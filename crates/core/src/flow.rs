//! The three-phase SUNMAP flow (paper Fig. 4), plus the optional
//! phase-4 simulation validation of §6.2.

use sunmap_gen::{build_netlist, emit_dot, emit_systemc, Netlist, SourceFile};
use sunmap_mapping::{
    Constraints, Mapper, MapperConfig, Mapping, MappingError, Objective, RouteTable,
    RoutingFunction, SwapStrategy, TablePrep,
};
use sunmap_power::{AreaPowerLibrary, Technology};
use sunmap_sim::{LatencyStats, SimConfig, SimSession};
use sunmap_topology::{builders, TopologyError, TopologyGraph, TopologyKind};
use sunmap_traffic::CoreGraph;

/// Errors of the end-to-end flow.
#[derive(Debug)]
#[non_exhaustive]
pub enum SunmapError {
    /// The topology library could not be built for this application.
    Topology(TopologyError),
    /// Every topology in the library failed to produce a feasible
    /// mapping; the per-topology failures are carried for diagnosis.
    NoFeasibleTopology(Vec<(TopologyKind, MappingError)>),
}

impl std::fmt::Display for SunmapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SunmapError::Topology(e) => write!(f, "topology library error: {e}"),
            SunmapError::NoFeasibleTopology(fails) => {
                write!(f, "no topology produced a feasible mapping (")?;
                for (i, (kind, e)) in fails.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{}: {e}", kind.name())?;
                }
                write!(f, ")")
            }
        }
    }
}

impl std::error::Error for SunmapError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SunmapError::Topology(e) => Some(e),
            SunmapError::NoFeasibleTopology(_) => None,
        }
    }
}

impl From<TopologyError> for SunmapError {
    fn from(e: TopologyError) -> Self {
        SunmapError::Topology(e)
    }
}

/// How phase 2 picks the winning topology among feasible mappings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectionPolicy {
    /// The paper's phase 2: "the various topologies are evaluated for
    /// several design objectives and the best topology is chosen" —
    /// each feasible candidate's delay, area and power are normalised
    /// to the per-metric minimum and summed; the lowest total wins.
    /// This is what makes the mesh beat the lower-power Clos for MPEG4
    /// (Fig. 7b) while the butterfly still sweeps VOPD.
    #[default]
    Balanced,
    /// Select purely by the tool's configured [`Objective`].
    ByObjective,
}

/// One topology of the library with its mapping outcome.
#[derive(Debug)]
pub struct TopologyCandidate {
    /// Which topology this is.
    pub kind: TopologyKind,
    /// The built topology graph.
    pub graph: TopologyGraph,
    /// The mapping, or why none was feasible (e.g. the butterfly row of
    /// paper Fig. 7b).
    pub outcome: Result<Mapping, MappingError>,
}

impl TopologyCandidate {
    /// The mapping's cost report, if feasible.
    pub fn report(&self) -> Option<&sunmap_mapping::CostReport> {
        self.outcome.as_ref().ok().map(|m| m.report())
    }
}

/// One phase-4 measurement: a candidate simulated under its mapping's
/// traffic trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationEntry {
    /// Index of the simulated candidate in `Exploration::candidates`.
    pub candidate: usize,
    /// Which topology was simulated.
    pub kind: TopologyKind,
    /// The measured statistics.
    pub stats: LatencyStats,
}

/// Phase-4 result: trace simulations of the top-ranked candidates (the
/// winner first, then the runner-up), annotating the selection report
/// with *measured* latency the way §6.2 backs the analytical table with
/// cycle-accurate numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct Validation {
    /// Measured entries, in rank order (winner first).
    pub entries: Vec<ValidationEntry>,
    /// The trace intensity used (flits/cycle for the heaviest
    /// commodity).
    pub intensity: f64,
}

/// Phase 1+2 result: every candidate plus the selected best.
#[derive(Debug)]
pub struct Exploration {
    /// All evaluated topologies, in library order.
    pub candidates: Vec<TopologyCandidate>,
    /// Index of the selected topology in `candidates`, if any mapping
    /// was feasible.
    pub best: Option<usize>,
    /// The objective used for selection.
    pub objective: Objective,
    /// Phase-4 measurements, when [`Sunmap::validate`] has run.
    pub validation: Option<Validation>,
}

impl Exploration {
    /// The selected candidate (phase 2 winner).
    pub fn best_candidate(&self) -> Option<&TopologyCandidate> {
        self.best.map(|i| &self.candidates[i])
    }

    /// The measured latency of candidate `i`, if phase 4 simulated it.
    pub fn measured_stats(&self, i: usize) -> Option<&LatencyStats> {
        self.validation
            .as_ref()?
            .entries
            .iter()
            .find(|e| e.candidate == i)
            .map(|e| &e.stats)
    }

    /// Formats the exploration as a paper-style table (one row per
    /// topology: avg hops, design area, design power, feasibility).
    pub fn table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<10} {:>9} {:>12} {:>11} {:>9}",
            "Topo", "avg hops", "area (mm2)", "power (mW)", "feasible"
        );
        for (i, c) in self.candidates.iter().enumerate() {
            match &c.outcome {
                Ok(m) => {
                    let r = m.report();
                    let best = if Some(i) == self.best { " <= best" } else { "" };
                    let measured = match self.measured_stats(i) {
                        Some(s) => format!(" [measured {:.1} cy]", s.avg_latency),
                        None => String::new(),
                    };
                    let _ = writeln!(
                        out,
                        "{:<10} {:>9.2} {:>12.2} {:>11.1} {:>9}{best}{measured}",
                        c.kind.name(),
                        r.avg_hops,
                        r.design_area,
                        r.power_mw,
                        "yes"
                    );
                }
                Err(_) => {
                    let _ = writeln!(
                        out,
                        "{:<10} {:>9} {:>12} {:>11} {:>9}",
                        c.kind.name(),
                        "-",
                        "-",
                        "-",
                        "no"
                    );
                }
            }
        }
        out
    }
}

/// Phase 3 result: the generated design.
#[derive(Debug)]
pub struct GeneratedDesign {
    /// Structural netlist of the chosen NoC.
    pub netlist: Netlist,
    /// SystemC-style sources.
    pub files: Vec<SourceFile>,
    /// Graphviz rendering of the netlist.
    pub dot: String,
}

/// Phase-2 candidate ranking: feasible candidate indices ordered best
/// to worst under `policy` (ties keep library order). The head of the
/// list is the phase-2 winner; the second entry is the runner-up that
/// phase 4 also simulates.
fn rank_feasible(
    candidates: &[TopologyCandidate],
    policy: SelectionPolicy,
    objective: Objective,
) -> Vec<usize> {
    let reports: Vec<Option<&sunmap_mapping::CostReport>> =
        candidates.iter().map(|c| c.report()).collect();
    rank_reports(&reports, policy, objective)
}

/// The ranking core shared with the batch engine: feasible report
/// indices ordered best to worst under `policy` (ties keep input
/// order). `None` entries are infeasible candidates.
pub(crate) fn rank_reports(
    reports: &[Option<&sunmap_mapping::CostReport>],
    policy: SelectionPolicy,
    objective: Objective,
) -> Vec<usize> {
    let feasible: Vec<(usize, &sunmap_mapping::CostReport)> = reports
        .iter()
        .enumerate()
        .filter_map(|(i, r)| r.map(|r| (i, r)))
        .collect();
    if feasible.is_empty() {
        return Vec::new();
    }
    let score: Box<dyn Fn(&sunmap_mapping::CostReport) -> f64> = match policy {
        SelectionPolicy::ByObjective => Box::new(move |r| r.cost(objective)),
        SelectionPolicy::Balanced => {
            let min_of = |f: fn(&sunmap_mapping::CostReport) -> f64| {
                feasible
                    .iter()
                    .map(|(_, r)| f(r))
                    .fold(f64::INFINITY, f64::min)
                    .max(1e-12)
            };
            let (dmin, amin, pmin) = (
                min_of(|r| r.avg_hops),
                min_of(|r| r.design_area),
                min_of(|r| r.power_mw),
            );
            Box::new(move |r| r.avg_hops / dmin + r.design_area / amin + r.power_mw / pmin)
        }
    };
    let mut ranked: Vec<(usize, f64)> = feasible.iter().map(|(i, r)| (*i, score(r))).collect();
    // Stable sort under a total order (NaN scores sort last instead of
    // feeding sort_by an intransitive comparator); equal scores keep
    // library order, so the winner matches a min-scan selection.
    ranked.sort_by(|(_, a), (_, b)| a.total_cmp(b));
    ranked.into_iter().map(|(i, _)| i).collect()
}

/// Builder for [`Sunmap`] (see the crate-level quickstart).
#[derive(Debug, Clone)]
pub struct SunmapBuilder {
    app: CoreGraph,
    link_capacity: f64,
    routing: RoutingFunction,
    objective: Objective,
    constraints: Constraints,
    technology: Technology,
    max_swap_passes: usize,
    selection: SelectionPolicy,
    swap_strategy: SwapStrategy,
    table_prep: TablePrep,
}

impl SunmapBuilder {
    /// Maximum link bandwidth of the NoC in MB/s (the paper
    /// conservatively assumes 500 MB/s for the video benchmarks).
    pub fn link_capacity(mut self, mbs: f64) -> Self {
        self.link_capacity = mbs;
        self
    }

    /// Routing function for the mapping phase.
    pub fn routing(mut self, routing: RoutingFunction) -> Self {
        self.routing = routing;
        self
    }

    /// Design objective for mapping and topology selection.
    pub fn objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Feasibility constraints.
    pub fn constraints(mut self, constraints: Constraints) -> Self {
        self.constraints = constraints;
        self
    }

    /// Technology node for the area–power libraries (default 0.1 µm).
    pub fn technology(mut self, technology: Technology) -> Self {
        self.technology = technology;
        self
    }

    /// Improvement-pass budget for the pair-wise-swap phase.
    pub fn max_swap_passes(mut self, passes: usize) -> Self {
        self.max_swap_passes = passes;
        self
    }

    /// How the swap phase scores candidates (default
    /// [`SwapStrategy::Auto`]: exhaustive on small topologies, the
    /// incremental delta-pruned engine on large ones — winners are
    /// bit-identical either way).
    pub fn swap_strategy(mut self, strategy: SwapStrategy) -> Self {
        self.swap_strategy = strategy;
        self
    }

    /// How each candidate's route table prepares its pair-wise
    /// structures (default [`TablePrep::Auto`]: eager on small
    /// topologies, lazy/closed-form at scale — query answers are
    /// bit-identical either way).
    pub fn table_prep(mut self, prep: TablePrep) -> Self {
        self.table_prep = prep;
        self
    }

    /// How phase 2 selects the winner (default:
    /// [`SelectionPolicy::Balanced`]).
    pub fn selection(mut self, selection: SelectionPolicy) -> Self {
        self.selection = selection;
        self
    }

    /// Finalises the configuration.
    pub fn build(self) -> Sunmap {
        Sunmap { inner: self }
    }
}

/// The SUNMAP tool: an application plus the design-space parameters,
/// ready to explore the topology library and generate the winner.
#[derive(Debug, Clone)]
pub struct Sunmap {
    inner: SunmapBuilder,
}

impl Sunmap {
    /// Starts configuring a run for `app`.
    pub fn builder(app: CoreGraph) -> SunmapBuilder {
        SunmapBuilder {
            app,
            link_capacity: 500.0,
            routing: RoutingFunction::MinPath,
            objective: Objective::MinDelay,
            constraints: Constraints::default(),
            technology: Technology::um_0_10(),
            max_swap_passes: 4,
            selection: SelectionPolicy::default(),
            swap_strategy: SwapStrategy::Auto,
            table_prep: TablePrep::Auto,
        }
    }

    /// The application being mapped.
    pub fn application(&self) -> &CoreGraph {
        &self.inner.app
    }

    /// The mapper configuration this tool uses.
    pub fn mapper_config(&self) -> MapperConfig {
        MapperConfig {
            routing: self.inner.routing,
            objective: self.inner.objective,
            constraints: self.inner.constraints,
            max_swap_passes: self.inner.max_swap_passes,
            swap_strategy: self.inner.swap_strategy,
            table_prep: self.inner.table_prep,
        }
    }

    /// Phases 1 and 2: maps the application onto the standard library
    /// sized for it and selects the best feasible topology.
    ///
    /// # Errors
    ///
    /// Returns [`SunmapError::Topology`] if the library cannot be built
    /// (e.g. an empty application). An exploration where *no* topology
    /// is feasible is **not** an error here — inspect
    /// [`Exploration::best`]; [`Sunmap::run`] does turn it into one.
    pub fn explore(&self) -> Result<Exploration, SunmapError> {
        let library =
            builders::standard_library(self.inner.app.core_count(), self.inner.link_capacity)?;
        Ok(self.explore_library(library))
    }

    /// Phase 1+2 over a caller-supplied topology list (the paper notes
    /// other topologies "can be easily added to the topology library").
    pub fn explore_library(&self, library: Vec<TopologyGraph>) -> Exploration {
        let config = self.mapper_config();
        let candidates: Vec<TopologyCandidate> = library
            .into_iter()
            .map(|graph| {
                let lib = AreaPowerLibrary::new(self.inner.technology);
                // One route table per library candidate: the mapper's
                // swap search shares its caches across every pass, and
                // callers re-exploring the same graphs can keep their
                // own tables via Mapper::with_route_table.
                let mut table = RouteTable::with_prep(&graph, config.table_prep);
                let outcome = Mapper::with_library(&graph, &self.inner.app, config, lib)
                    .with_route_table(&mut table)
                    .run();
                TopologyCandidate {
                    kind: graph.kind(),
                    graph,
                    outcome,
                }
            })
            .collect();
        let best = rank_feasible(&candidates, self.inner.selection, self.inner.objective)
            .first()
            .copied();
        Exploration {
            candidates,
            best,
            objective: self.inner.objective,
            validation: None,
        }
    }

    /// Phase 4 (paper §6.2): trace-simulates the phase-2 winner and the
    /// runner-up under their mapped traffic at `intensity` and attaches
    /// the measured latencies to `exploration` — the selection table
    /// then carries simulated numbers next to the analytical ones. A
    /// no-op when nothing is feasible.
    pub fn validate(&self, exploration: &mut Exploration, config: SimConfig, intensity: f64) {
        let ranked = rank_feasible(
            &exploration.candidates,
            self.inner.selection,
            self.inner.objective,
        );
        let entries: Vec<ValidationEntry> = ranked
            .into_iter()
            .take(2)
            .map(|i| {
                let c = &exploration.candidates[i];
                let mapping = c.outcome.as_ref().expect("ranked candidates are feasible");
                let mut sim = SimSession::builder(&c.graph).config(config).build();
                ValidationEntry {
                    candidate: i,
                    kind: c.kind,
                    stats: sim.run_trace(mapping.evaluation(), &self.inner.app, intensity),
                }
            })
            .collect();
        exploration.validation = (!entries.is_empty()).then_some(Validation { entries, intensity });
    }

    /// Phase 3: generates the network components for a mapped
    /// candidate.
    ///
    /// # Panics
    ///
    /// Panics if the candidate's outcome is infeasible; generate only
    /// winners.
    pub fn generate(&self, candidate: &TopologyCandidate, design_name: &str) -> GeneratedDesign {
        let mapping = candidate
            .outcome
            .as_ref()
            .expect("generate() requires a feasible candidate");
        let netlist = build_netlist(&candidate.graph, &self.inner.app, mapping.placement());
        let files = emit_systemc(&netlist, design_name);
        let dot = emit_dot(&netlist);
        GeneratedDesign {
            netlist,
            files,
            dot,
        }
    }

    /// The complete flow: explore, select, generate.
    ///
    /// # Errors
    ///
    /// [`SunmapError::NoFeasibleTopology`] if nothing in the library can
    /// carry the application under the constraints.
    pub fn run(&self, design_name: &str) -> Result<(Exploration, GeneratedDesign), SunmapError> {
        let exploration = self.explore()?;
        let Some(best) = exploration.best else {
            let failures = exploration
                .candidates
                .into_iter()
                .map(|c| {
                    let err = c.outcome.err().unwrap_or(MappingError::InvalidPlacement(
                        "feasible but unselected".to_string(),
                    ));
                    (c.kind, err)
                })
                .collect();
            return Err(SunmapError::NoFeasibleTopology(failures));
        };
        let design = self.generate(&exploration.candidates[best], design_name);
        Ok((exploration, design))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunmap_traffic::benchmarks;

    #[test]
    fn vopd_exploration_finds_butterfly_best_for_power() {
        let tool = Sunmap::builder(benchmarks::vopd())
            .objective(Objective::MinPower)
            .build();
        let ex = tool.explore().unwrap();
        assert_eq!(ex.candidates.len(), 5);
        let best = ex.best_candidate().expect("VOPD is feasible");
        assert_eq!(best.kind.name(), "Butterfly");
    }

    #[test]
    fn mpeg4_butterfly_row_is_infeasible_with_split_routing() {
        let tool = Sunmap::builder(benchmarks::mpeg4())
            .routing(RoutingFunction::SplitAllPaths)
            .build();
        let ex = tool.explore().unwrap();
        let bfly = ex
            .candidates
            .iter()
            .find(|c| c.kind.name() == "Butterfly")
            .unwrap();
        assert!(bfly.outcome.is_err(), "butterfly must be infeasible");
        // All direct topologies and the Clos are feasible.
        let feasible = ex.candidates.iter().filter(|c| c.outcome.is_ok()).count();
        assert_eq!(feasible, 4);
    }

    #[test]
    fn full_run_generates_systemc() {
        let tool = Sunmap::builder(benchmarks::dsp_filter())
            .link_capacity(1000.0)
            .build();
        let (ex, design) = tool.run("dsp").unwrap();
        assert!(ex.best.is_some());
        assert!(!design.files.is_empty());
        assert!(design.dot.contains("digraph"));
        assert!(design.netlist.ni_count() == 6);
    }

    #[test]
    fn exploration_table_renders_all_rows() {
        let tool = Sunmap::builder(benchmarks::vopd()).build();
        let ex = tool.explore().unwrap();
        let table = ex.table();
        for name in ["Mesh", "Torus", "Hypercube", "Clos", "Butterfly"] {
            assert!(table.contains(name), "{name} missing from table");
        }
        assert!(table.contains("<= best"));
    }

    #[test]
    fn validate_simulates_winner_and_runner_up() {
        let tool = Sunmap::builder(benchmarks::vopd()).build();
        let mut ex = tool.explore().unwrap();
        assert!(ex.validation.is_none());
        tool.validate(&mut ex, SimConfig::fast(), 0.3);
        let v = ex.validation.as_ref().expect("VOPD validates");
        assert_eq!(v.entries.len(), 2);
        assert_eq!(Some(v.entries[0].candidate), ex.best);
        assert_ne!(v.entries[1].candidate, v.entries[0].candidate);
        for e in &v.entries {
            assert!(e.stats.packets_delivered > 0, "{}: {}", e.kind, e.stats);
            assert!(e.stats.avg_latency > 0.0);
        }
        // The annotated table carries the measured numbers.
        let table = ex.table();
        assert!(table.contains("[measured "), "{table}");
        // Determinism: validating again yields identical measurements.
        let mut ex2 = tool.explore().unwrap();
        tool.validate(&mut ex2, SimConfig::fast(), 0.3);
        assert_eq!(ex.validation, ex2.validation);
    }

    #[test]
    fn validate_on_infeasible_exploration_is_a_noop() {
        let tool = Sunmap::builder(benchmarks::vopd())
            .link_capacity(1.0)
            .build();
        let mut ex = tool.explore().unwrap();
        assert!(ex.best.is_none());
        tool.validate(&mut ex, SimConfig::fast(), 0.3);
        assert!(ex.validation.is_none());
    }

    #[test]
    fn no_feasible_topology_is_reported() {
        // 1 MB/s links cannot carry VOPD anywhere.
        let tool = Sunmap::builder(benchmarks::vopd())
            .link_capacity(1.0)
            .build();
        let err = tool.run("x").unwrap_err();
        assert!(matches!(err, SunmapError::NoFeasibleTopology(_)));
        assert!(err.to_string().contains("Mesh"));
    }

    #[test]
    fn custom_library_exploration() {
        let tool = Sunmap::builder(benchmarks::dsp_filter())
            .link_capacity(1000.0)
            .build();
        let lib = vec![
            builders::mesh(2, 3, 1000.0).unwrap(),
            builders::torus(2, 3, 1000.0).unwrap(),
        ];
        let ex = tool.explore_library(lib);
        assert_eq!(ex.candidates.len(), 2);
        assert!(ex.best.is_some());
    }
}
