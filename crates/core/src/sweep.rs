//! Design-space sweeps over a chosen topology (paper §6.3): the effect
//! of the routing function on required bandwidth (Fig. 9a) and the
//! area-power Pareto exploration (Fig. 9b).

use crate::{pareto_front, ParetoPoint};
use sunmap_mapping::{
    Constraints, Mapper, MapperConfig, Objective, RouteTable, RoutingFunction, SwapStrategy,
};
use sunmap_topology::TopologyGraph;
use sunmap_traffic::CoreGraph;

/// One bar of the paper's Fig. 9a: the minimum link bandwidth a routing
/// function needs to carry the application on the given topology.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingSweepEntry {
    /// The routing function.
    pub routing: RoutingFunction,
    /// The smallest feasible link bandwidth (MB/s): the maximum link
    /// load of the best mapping found under the min-bandwidth
    /// objective.
    pub min_bandwidth: f64,
}

/// Computes Fig. 9a for `app` on `graph`: for each of the four routing
/// functions, the best mapping under the minimise-max-link-load
/// objective (bandwidth constraints relaxed — the answer *is* the
/// required bandwidth).
///
/// # Examples
///
/// ```
/// use sunmap::routing_bandwidth_sweep;
/// use sunmap::topology::builders;
/// use sunmap::traffic::benchmarks;
///
/// let mesh = builders::mesh(3, 4, 500.0)?;
/// let sweep = routing_bandwidth_sweep(&benchmarks::mpeg4(), &mesh);
/// assert_eq!(sweep.len(), 4);
/// // Splitting across all paths never needs more bandwidth than
/// // single-path routing (paper Fig. 9a's downward staircase).
/// assert!(sweep[3].min_bandwidth <= sweep[1].min_bandwidth);
/// # Ok::<(), sunmap::topology::TopologyError>(())
/// ```
pub fn routing_bandwidth_sweep(app: &CoreGraph, graph: &TopologyGraph) -> Vec<RoutingSweepEntry> {
    // One route table serves all four runs: the adjacency matrix, hop
    // distances and quadrant sets are routing-independent, and each
    // routing function's path caches fill once on first use.
    let mut table = RouteTable::new(graph);
    RoutingFunction::ALL
        .iter()
        .map(|&routing| {
            let config = MapperConfig {
                routing,
                objective: Objective::MinBandwidth,
                constraints: Constraints::relaxed_bandwidth(),
                max_swap_passes: 4,
                ..MapperConfig::default()
            };
            let min_bandwidth = Mapper::new(graph, app, config)
                .with_route_table(&mut table)
                .run()
                .map(|m| m.report().max_link_load)
                .unwrap_or(f64::INFINITY);
            RoutingSweepEntry {
                routing,
                min_bandwidth,
            }
        })
        .collect()
}

/// Computes the Fig. 9b Pareto exploration for `app` on `graph`: runs
/// the mapper under every objective × routing-function combination
/// (bandwidth relaxed so every point exists) and records
/// `(floorplan area, power)` for **every candidate mapping the search
/// evaluates** — the paper's "Pareto points in the design space of the
/// mapping" are exactly this cloud. Returns the cloud and its Pareto
/// front.
///
/// The area axis uses the floorplan bounding box, which — unlike the
/// summed block area — varies with the placement, giving a genuine
/// trade-off curve.
pub fn pareto_exploration(
    app: &CoreGraph,
    graph: &TopologyGraph,
) -> (Vec<ParetoPoint>, Vec<ParetoPoint>) {
    let mut points = Vec::new();
    // All 16 objective × routing runs share one per-topology route
    // table.
    let mut table = RouteTable::new(graph);
    for objective in [
        Objective::MinDelay,
        Objective::MinArea,
        Objective::MinPower,
        Objective::MinBandwidth,
    ] {
        for routing in RoutingFunction::ALL {
            // The Pareto study wants the *complete* candidate cloud, so
            // the sweep stays exhaustive whatever the topology size.
            let config = MapperConfig {
                routing,
                objective,
                constraints: Constraints::relaxed_bandwidth(),
                max_swap_passes: 2,
                swap_strategy: SwapStrategy::Exhaustive,
                ..MapperConfig::default()
            };
            let label = format!("{objective}/{routing}");
            let _ = Mapper::new(graph, app, config)
                .with_route_table(&mut table)
                .run_observed(|report| {
                    points.push(ParetoPoint {
                        label: label.clone(),
                        x: report.floorplan_area,
                        y: report.power_mw,
                    });
                });
        }
    }
    let front = pareto_front(&points);
    (points, front)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunmap_topology::builders;
    use sunmap_traffic::benchmarks;

    #[test]
    fn fig9a_staircase_descends() {
        let mesh = builders::mesh(3, 4, 500.0).unwrap();
        let sweep = routing_bandwidth_sweep(&benchmarks::mpeg4(), &mesh);
        let bw: Vec<f64> = sweep.iter().map(|e| e.min_bandwidth).collect();
        // DO >= MP and MP >= SM >= SA (more freedom never hurts the
        // best achievable max load).
        assert!(bw[0] >= bw[1] - 1e-6, "DO {} < MP {}", bw[0], bw[1]);
        assert!(bw[1] >= bw[2] - 1e-6, "MP {} < SM {}", bw[1], bw[2]);
        assert!(bw[2] >= bw[3] - 1e-6, "SM {} < SA {}", bw[2], bw[3]);
        // Split routing gets MPEG4 under the 910 MB/s single-flow bound.
        assert!(bw[3] < 910.0);
    }

    #[test]
    fn fig9a_only_split_routing_fits_500mbs() {
        // Paper §6.3: "when maximum available link bandwidth is
        // 500 MB/s, only split-traffic routing can be used for MPEG4".
        let mesh = builders::mesh(3, 4, 500.0).unwrap();
        let sweep = routing_bandwidth_sweep(&benchmarks::mpeg4(), &mesh);
        assert!(sweep[0].min_bandwidth > 500.0, "DO should exceed 500");
        assert!(sweep[1].min_bandwidth > 500.0, "MP should exceed 500");
        assert!(sweep[3].min_bandwidth <= 500.0, "SA should fit 500");
    }

    #[test]
    fn pareto_points_exist_and_front_is_consistent() {
        let mesh = builders::mesh(3, 4, 500.0).unwrap();
        let (points, front) = pareto_exploration(&benchmarks::mpeg4(), &mesh);
        assert!(!points.is_empty());
        assert!(!front.is_empty());
        assert!(front.len() <= points.len());
        for f in &front {
            assert!(
                !points.iter().any(|p| p.dominates(f)),
                "front member {} is dominated",
                f.label
            );
        }
    }
}
