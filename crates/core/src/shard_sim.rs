//! Deterministic chaos simulation for the shard protocol.
//!
//! The coordinator and worker in [`crate::shard`] are IO-free state
//! machines, so the whole distributed system can run inside one
//! function with *virtual* sockets: per-link `VecDeque` message
//! queues, a virtual clock that only advances when the harness says
//! so, and a seeded RNG choosing what happens next. Each step the
//! harness either delivers a frame (possibly delayed, reordered,
//! duplicated or dropped), finishes a worker's in-progress compute,
//! kills a worker (crash or silent freeze), respawns one, or lets
//! time pass — and because every choice flows from the seed, a
//! failing seed replays exactly.
//!
//! The invariant under test is the tool's core guarantee: whatever
//! faults fire, the assembled output equals [`oracle_lines`] — the
//! bytes a single process would produce — and the run terminates.
//! `SHARD_SIMTEST_SEEDS=N` widens the pinned-seed corpus in
//! `tests/shard_simtest.rs` for local sweeps.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::metrics::ShardCounters;
use crate::schema::BATCH_SCHEMA;
use crate::shard::{
    CoordAction, CoordConfig, CoordEvent, Coordinator, ShardWorker, WorkerAction, WorkerEvent,
    WorkerId,
};

/// Per-step fault probabilities, each in `[0, 1]`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultPlan {
    /// Chance a step is forced to pass time instead of delivering
    /// anything (messages sit in their queues — delay).
    pub delay: f64,
    /// Chance a delivery picks a random queue position instead of the
    /// head (reordering).
    pub reorder: f64,
    /// Chance a delivered frame is also left in the queue (duplicate
    /// delivery).
    pub duplicate: f64,
    /// Chance a selected frame is discarded instead of delivered.
    pub drop: f64,
    /// Chance a step kills a random live worker (half crash — the
    /// coordinator sees the disconnect — half silent freeze, which
    /// only the heartbeat timeout can catch).
    pub kill: f64,
}

impl FaultPlan {
    /// Every fault class at once, at rates the retry budget absorbs.
    pub fn chaos() -> FaultPlan {
        FaultPlan {
            delay: 0.10,
            reorder: 0.20,
            duplicate: 0.10,
            drop: 0.08,
            kill: 0.004,
        }
    }
}

/// One simulation scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct SimSpec {
    /// RNG seed; equal specs replay identically.
    pub seed: u64,
    /// Jobs in the virtual manifest.
    pub jobs: usize,
    /// Target live worker count (killed workers respawn toward it).
    pub workers: usize,
    /// Jobs per lease.
    pub grain: usize,
    /// Fault probabilities.
    pub faults: FaultPlan,
    /// Step budget before the run is declared non-terminating.
    pub max_steps: u64,
}

impl SimSpec {
    /// A medium-sized scenario for `seed` with [`FaultPlan::chaos`].
    pub fn chaos(seed: u64) -> SimSpec {
        SimSpec {
            seed,
            jobs: 23,
            workers: 3,
            grain: 2,
            faults: FaultPlan::chaos(),
            max_steps: 400_000,
        }
    }
}

/// What a completed simulation reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimOutcome {
    /// The delivered lines, in delivery order.
    pub lines: Vec<String>,
    /// The coordinator's final robustness counters.
    pub counters: ShardCounters,
    /// Steps the run took.
    pub steps: u64,
    /// Workers killed by the kill fault.
    pub kills: u64,
}

/// The deterministic line the virtual executor renders for `job` — the
/// simtest's stand-in for [`crate::batch`]'s `run_job`, sharing its
/// one property that matters here: same job, same bytes, any process.
pub fn sim_job_line(job: usize) -> String {
    format!(
        "{{\"schema\":\"{BATCH_SCHEMA}\",\"job\":\"sim-{job}\",\"value\":{}}}",
        (job * 31) % 97
    )
}

/// The single-process oracle: what `jobs` jobs produce with no
/// distribution at all.
pub fn oracle_lines(jobs: usize) -> Vec<String> {
    (0..jobs).map(sim_job_line).collect()
}

const TICK_MS: u64 = 10;
const RESPAWN_DELAY_MS: u64 = 50;
const WORKER_HEARTBEAT_MS: u64 = 40;

struct SimWorker {
    machine: ShardWorker,
    /// Job handed to the virtual executor, not yet finished.
    computing: Option<usize>,
    /// False once killed (either flavor) or exited.
    alive: bool,
    /// A silently frozen worker: link intact, machine never steps.
    frozen: bool,
}

/// The virtual transport and scheduler around one [`Coordinator`] and
/// its workers.
struct Sim {
    rng: SmallRng,
    spec: SimSpec,
    now_ms: u64,
    coordinator: Coordinator,
    workers: BTreeMap<WorkerId, SimWorker>,
    /// coordinator → worker frames in flight.
    c2w: BTreeMap<WorkerId, VecDeque<String>>,
    /// worker → coordinator frames in flight.
    w2c: BTreeMap<WorkerId, VecDeque<String>>,
    next_worker: WorkerId,
    respawn_at: Vec<u64>,
    delivered: Vec<(usize, String)>,
    finished: bool,
    fatal: Option<String>,
    kills: u64,
}

/// What the scheduler can do this step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Choice {
    Tick,
    DeliverToWorker(WorkerId),
    DeliverToCoordinator(WorkerId),
    Compute(WorkerId),
    Respawn(usize),
}

impl Sim {
    fn new(spec: SimSpec) -> Sim {
        let coordinator = Coordinator::new(CoordConfig {
            first_job: 0,
            total_jobs: spec.jobs,
            grain: spec.grain,
            lease_timeout_ms: 150,
            heartbeat_timeout_ms: 200,
            max_attempts: 50,
            fingerprint: "sim".to_string(),
        });
        let mut sim = Sim {
            rng: SmallRng::seed_from_u64(spec.seed),
            spec,
            now_ms: 0,
            coordinator,
            workers: BTreeMap::new(),
            c2w: BTreeMap::new(),
            w2c: BTreeMap::new(),
            next_worker: 0,
            respawn_at: Vec::new(),
            delivered: Vec::new(),
            finished: false,
            fatal: None,
            kills: 0,
        };
        for _ in 0..sim.spec.workers.max(1) {
            sim.spawn_worker();
        }
        sim
    }

    fn spawn_worker(&mut self) {
        let id = self.next_worker;
        self.next_worker += 1;
        let mut machine = ShardWorker::new(&format!("w{id}"), "sim", WORKER_HEARTBEAT_MS);
        self.c2w.insert(id, VecDeque::new());
        self.w2c.insert(id, VecDeque::new());
        let actions = self.coordinator.step(CoordEvent::Connected { worker: id });
        self.apply_coord_actions(actions);
        let actions = machine.step(WorkerEvent::Start);
        self.workers.insert(
            id,
            SimWorker {
                machine,
                computing: None,
                alive: true,
                frozen: false,
            },
        );
        self.apply_worker_actions(id, actions);
    }

    fn apply_coord_actions(&mut self, actions: Vec<CoordAction>) {
        for action in actions {
            match action {
                CoordAction::Send { worker, payload } => {
                    if let Some(queue) = self.c2w.get_mut(&worker) {
                        queue.push_back(payload);
                    }
                }
                CoordAction::Deliver { job, line } => self.delivered.push((job, line)),
                CoordAction::Close { worker } => {
                    // The socket dies in both directions.
                    self.c2w.remove(&worker);
                    self.w2c.remove(&worker);
                    let closed = match self.workers.get_mut(&worker) {
                        Some(w) if w.alive && !w.frozen => {
                            w.alive = false;
                            Some(w.machine.step(WorkerEvent::ConnectionClosed))
                        }
                        _ => None,
                    };
                    if let Some(actions) = closed {
                        self.apply_worker_actions(worker, actions);
                    }
                    if !self.finished {
                        self.respawn_at.push(self.now_ms + RESPAWN_DELAY_MS);
                    }
                }
                CoordAction::Finished => self.finished = true,
                CoordAction::Fatal { message } => self.fatal = Some(message),
            }
        }
    }

    fn apply_worker_actions(&mut self, id: WorkerId, actions: Vec<WorkerAction>) {
        for action in actions {
            match action {
                WorkerAction::Send { payload } => {
                    if let Some(queue) = self.w2c.get_mut(&id) {
                        queue.push_back(payload);
                    }
                }
                WorkerAction::Compute { job } => {
                    let worker = self.workers.get_mut(&id).expect("stepped worker exists");
                    debug_assert!(worker.computing.is_none(), "one compute at a time");
                    worker.computing = Some(job);
                }
                WorkerAction::Exit { .. } => {
                    // Worker process ends; its socket closes under it.
                    if let Some(worker) = self.workers.get_mut(&id) {
                        worker.alive = false;
                        worker.computing = None;
                    }
                    self.c2w.remove(&id);
                    self.w2c.remove(&id);
                    let actions = self
                        .coordinator
                        .step(CoordEvent::Disconnected { worker: id });
                    self.apply_coord_actions(actions);
                }
            }
        }
    }

    /// Pops a frame from `queue` under the reorder fault.
    fn pop_frame(rng: &mut SmallRng, faults: &FaultPlan, queue: &mut VecDeque<String>) -> String {
        let index = if queue.len() > 1 && rng.gen_bool(faults.reorder) {
            rng.gen_range(0..queue.len())
        } else {
            0
        };
        queue.remove(index).expect("chosen from a non-empty queue")
    }

    fn kill_someone(&mut self) {
        let victims: Vec<WorkerId> = self
            .workers
            .iter()
            .filter(|(_, w)| w.alive && !w.frozen)
            .map(|(&id, _)| id)
            .collect();
        if victims.is_empty() {
            return;
        }
        let id = victims[self.rng.gen_range(0..victims.len())];
        self.kills += 1;
        let crash = self.rng.gen_bool(0.5);
        let worker = self.workers.get_mut(&id).expect("chosen above");
        if crash {
            // kill -9: the socket resets, unread frames are lost.
            worker.alive = false;
            worker.computing = None;
            self.c2w.remove(&id);
            self.w2c.remove(&id);
            let actions = self
                .coordinator
                .step(CoordEvent::Disconnected { worker: id });
            self.apply_coord_actions(actions);
        } else {
            // Silent freeze: the link stays up, already-sent frames
            // still arrive, but the process never speaks again. Only
            // the heartbeat timeout can catch this.
            worker.alive = false;
            worker.frozen = true;
            worker.computing = None;
        }
        self.respawn_at.push(self.now_ms + RESPAWN_DELAY_MS);
    }

    fn choices(&self) -> Vec<Choice> {
        let mut choices = vec![Choice::Tick];
        for (&id, queue) in &self.c2w {
            let processes = self.workers.get(&id).is_some_and(|w| w.alive && !w.frozen);
            if processes && !queue.is_empty() {
                choices.push(Choice::DeliverToWorker(id));
            }
        }
        for (&id, queue) in &self.w2c {
            // Frames a since-frozen worker already sent still arrive.
            if !queue.is_empty() {
                choices.push(Choice::DeliverToCoordinator(id));
            }
        }
        for (&id, worker) in &self.workers {
            if worker.alive && !worker.frozen && worker.computing.is_some() {
                choices.push(Choice::Compute(id));
            }
        }
        for (index, &at) in self.respawn_at.iter().enumerate() {
            if at <= self.now_ms {
                choices.push(Choice::Respawn(index));
                break; // one respawn choice per step is plenty
            }
        }
        choices
    }

    fn step(&mut self) {
        if self.rng.gen_bool(self.spec.faults.kill) {
            self.kill_someone();
            if self.finished || self.fatal.is_some() {
                return;
            }
        }
        let choices = self.choices();
        let choice = if self.rng.gen_bool(self.spec.faults.delay) {
            Choice::Tick
        } else {
            choices[self.rng.gen_range(0..choices.len())]
        };
        match choice {
            Choice::Tick => {
                self.now_ms += TICK_MS;
                let now_ms = self.now_ms;
                let actions = self.coordinator.step(CoordEvent::Tick { now_ms });
                self.apply_coord_actions(actions);
                let live: Vec<WorkerId> = self
                    .workers
                    .iter()
                    .filter(|(_, w)| w.alive && !w.frozen)
                    .map(|(&id, _)| id)
                    .collect();
                for id in live {
                    let actions = match self.workers.get_mut(&id) {
                        Some(w) if w.alive && !w.frozen => {
                            w.machine.step(WorkerEvent::Tick { now_ms })
                        }
                        _ => continue, // a coordinator action above closed it
                    };
                    self.apply_worker_actions(id, actions);
                }
            }
            Choice::DeliverToWorker(id) => {
                let Some(queue) = self.c2w.get_mut(&id) else {
                    return;
                };
                let frame = Self::pop_frame(&mut self.rng, &self.spec.faults, queue);
                if self.rng.gen_bool(self.spec.faults.drop) {
                    return;
                }
                if self.rng.gen_bool(self.spec.faults.duplicate) {
                    queue.push_front(frame.clone());
                }
                let actions = match self.workers.get_mut(&id) {
                    Some(w) if w.alive && !w.frozen => {
                        w.machine.step(WorkerEvent::Frame { payload: frame })
                    }
                    _ => return,
                };
                self.apply_worker_actions(id, actions);
            }
            Choice::DeliverToCoordinator(id) => {
                let Some(queue) = self.w2c.get_mut(&id) else {
                    return;
                };
                let frame = Self::pop_frame(&mut self.rng, &self.spec.faults, queue);
                if self.rng.gen_bool(self.spec.faults.drop) {
                    return;
                }
                if self.rng.gen_bool(self.spec.faults.duplicate) {
                    queue.push_front(frame.clone());
                }
                let actions = self.coordinator.step(CoordEvent::Frame {
                    worker: id,
                    payload: frame,
                });
                self.apply_coord_actions(actions);
            }
            Choice::Compute(id) => {
                let job = match self.workers.get_mut(&id) {
                    Some(w) => w.computing.take().expect("chosen with a compute"),
                    None => return,
                };
                let line = sim_job_line(job);
                let actions = match self.workers.get_mut(&id) {
                    Some(w) if w.alive && !w.frozen => {
                        w.machine.step(WorkerEvent::Computed { job, line })
                    }
                    _ => return,
                };
                self.apply_worker_actions(id, actions);
            }
            Choice::Respawn(index) => {
                self.respawn_at.swap_remove(index);
                // Respawn toward the target population, never past it:
                // deaths the coordinator *suspects* (heartbeat timeouts
                // on congested links) also queue respawn entries, and
                // honoring every one would breed workers whose own
                // heartbeat traffic congests the links further.
                let live = self.workers.values().filter(|w| w.alive).count();
                if !self.finished && live < self.spec.workers.max(1) {
                    self.spawn_worker();
                }
            }
        }
    }
}

/// Runs one scenario to completion.
///
/// # Errors
///
/// A coordinator fatal (divergent duplicate, range out of retries), an
/// out-of-order delivery (the byte-identity machinery is broken), or a
/// run that exceeds `max_steps` without finishing.
pub fn run_shard_sim(spec: &SimSpec) -> Result<SimOutcome, String> {
    let mut sim = Sim::new(spec.clone());
    let mut steps = 0u64;
    while !sim.finished {
        if let Some(message) = &sim.fatal {
            return Err(format!("seed {}: coordinator fatal: {message}", spec.seed));
        }
        if steps >= spec.max_steps {
            return Err(format!(
                "seed {}: no termination within {} steps ({} of {} jobs delivered)",
                spec.seed,
                spec.max_steps,
                sim.delivered.len(),
                spec.jobs
            ));
        }
        sim.step();
        steps += 1;
    }
    for (position, (job, _)) in sim.delivered.iter().enumerate() {
        if *job != position {
            return Err(format!(
                "seed {}: delivery {position} was job {job} — out of order",
                spec.seed
            ));
        }
    }
    Ok(SimOutcome {
        lines: sim.delivered.into_iter().map(|(_, line)| line).collect(),
        counters: sim.coordinator.counters().clone(),
        steps,
        kills: sim.kills,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faultless_sim_delivers_the_oracle() {
        let spec = SimSpec {
            seed: 1,
            jobs: 9,
            workers: 2,
            grain: 2,
            faults: FaultPlan::default(),
            max_steps: 100_000,
        };
        let outcome = run_shard_sim(&spec).expect("clean run");
        assert_eq!(outcome.lines, oracle_lines(9));
        assert_eq!(outcome.counters.jobs_completed, 9);
        assert_eq!(outcome.counters.worker_deaths, 0);
        assert_eq!(outcome.counters.duplicate_results, 0);
        assert_eq!(outcome.kills, 0);
    }

    #[test]
    fn same_seed_same_outcome() {
        let spec = SimSpec::chaos(42);
        let a = run_shard_sim(&spec).expect("chaos run terminates");
        let b = run_shard_sim(&spec).expect("chaos run terminates");
        assert_eq!(a, b, "the simulation must be fully deterministic");
        assert_eq!(a.lines, oracle_lines(spec.jobs));
    }
}
