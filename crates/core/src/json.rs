//! A minimal JSON reader for the request/serve wire formats.
//!
//! The crate *emits* JSON by string assembly (see
//! [`sunmap_sim::sweep::json_string`]); this module is the matching
//! *reader* — just enough recursive-descent JSON to parse
//! [`crate::request::ExploreRequest`] payloads and serve frames without
//! pulling in a serialization dependency. It accepts standard JSON
//! (RFC 8259) minus some exotica nothing here emits: no `\uXXXX`
//! surrogate pairs, numbers via Rust's `f64` grammar.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Parses one JSON document (surrounding whitespace allowed).
    pub(crate) fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(value)
    }

    /// The object's field, if this is an object that has it.
    pub(crate) fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub(crate) fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn eat_word(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(format!("expected '{word}' at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.eat_word("null").map(|()| Json::Null),
            Some(b't') => self.eat_word("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat_word("false").map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("expected a JSON value at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {start}"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {start}"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("bad \\u escape at byte {start}"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {start}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one UTF-8 character (input is a &str, so
                    // boundaries are sound).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8".to_string())?;
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| format!("'{text}' is not a number (byte {start})"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-2.5e2").unwrap(), Json::Number(-250.0));
        assert_eq!(
            Json::parse("\"a\\\"b\\\\c\\u0041\"").unwrap(),
            Json::String("a\"b\\cA".to_string())
        );
        let v = Json::parse("{\"a\":[1,2,{}],\"b\":\"x\"}").unwrap();
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(
            v.get("a"),
            Some(&Json::Array(vec![
                Json::Number(1.0),
                Json::Number(2.0),
                Json::Object(BTreeMap::new())
            ]))
        );
    }

    #[test]
    fn round_trips_the_emitters_escapes() {
        // Everything sunmap_sim::sweep::json_string can emit must read
        // back to the original text.
        for original in ["plain", "q\"uote", "back\\slash", "tab\there", "bell\u{7}"] {
            let emitted = sunmap_sim::sweep::json_string(original);
            assert_eq!(
                Json::parse(&emitted).unwrap(),
                Json::String(original.to_string()),
                "{emitted}"
            );
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "\"open", "{\"a\" 1}", "nul", "1 2", "{}x"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }
}
