//! Distributed batch exploration: a fault-tolerant shard coordinator.
//!
//! `sunmap batch` shards a manifest across threads; this module shards
//! it across *processes*. A coordinator owns the manifest's job order
//! and leases contiguous job ranges to workers over the shared
//! [`crate::frame`] codec (schema `sunmap-shard/1`); workers compute
//! each leased job through the same deterministic
//! [`crate::batch`] path and stream result lines back. The coordinator
//! feeds accepted lines through an in-order delivery cursor, so the
//! assembled `batch.jsonl` is **byte-identical to a single-process
//! run** — and, composed with [`crate::batch::plan_resume`], a killed
//! coordinator resumes to identical bytes too.
//!
//! # Wire protocol (`sunmap-shard/1`)
//!
//! | op | direction | fields |
//! |----|-----------|--------|
//! | `hello` | worker → coordinator | `name`, `fingerprint` |
//! | `lease` | coordinator → worker | `lease`, `start`, `end` |
//! | `result` | worker → coordinator | `lease`, `job`, `line` |
//! | `heartbeat` | worker → coordinator | — |
//! | `drain` | coordinator → worker | — |
//!
//! `fingerprint` is [`crate::batch::manifest_fingerprint`]: a worker
//! that expanded a different manifest is drained before it can lease a
//! single job. Job indices are global manifest positions, so static
//! `--shard k/n` splits, coordinated leases and `--resume` all agree
//! on what job *k* means.
//!
//! # Failure model
//!
//! Workers crash, stall and get restarted; frames can be delayed,
//! reordered, duplicated or dropped by the transport shims around a
//! dying peer. The coordinator holds exactly one source of truth — the
//! manifest order — and treats everything else as soft state:
//!
//! - **lease timeouts**: a range not fully reported within the lease
//!   timeout is requeued with exponential backoff; after a bounded
//!   number of attempts the run fails loudly rather than spinning.
//! - **death detection**: a worker that misses heartbeats past the
//!   heartbeat timeout (or whose connection drops) is declared dead
//!   and its leased ranges requeue immediately.
//! - **idempotence**: results are keyed by job id. A duplicate (the
//!   original worker was slow, not dead) is byte-compared against the
//!   accepted line and deduped; a *divergent* duplicate would mean the
//!   deterministic mapping produced two different answers and is a
//!   hard error.
//! - **graceful drain**: `SIGTERM` stops granting, lets in-flight
//!   leases finish, and leaves a clean line prefix that `--resume`
//!   extends to the exact uninterrupted bytes.
//!
//! Both endpoints are IO-free state machines —
//! [`Coordinator::step`] / [`ShardWorker::step`] map one event to a
//! list of actions — driven in production by the thin socket shims
//! [`run_coordinator`] / [`run_worker`] and in tests by the seeded
//! chaos harness in [`crate::shard_sim`], which proves byte-identity
//! under injected faults for every seed.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

use crate::batch::{run_job, BatchJob};
use crate::frame::{read_frame_draining, write_frame};
use crate::json::Json;
use crate::metrics::ShardCounters;
use crate::request::LruLibraryCache;
use crate::serve::{claim_daemon_slot, POLL_INTERVAL, SHUTDOWN};
use sunmap_sim::sweep::json_string;

/// The wire schema identifier carried by every shard frame (defined in
/// [`crate::schema`] with the rest of the wire-schema registry).
pub use crate::schema::SHARD_SCHEMA;

/// A coordinator-assigned connection identity. Transport-level: a
/// restarted worker process is a *new* `WorkerId` even if it reuses
/// its `hello` name.
pub type WorkerId = u64;

/// One `sunmap-shard/1` frame, either direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardMsg {
    /// Worker → coordinator: announce readiness. `fingerprint` must
    /// match the coordinator's manifest or the worker is drained.
    Hello {
        /// Operator-chosen worker name (diagnostics only).
        name: String,
        /// [`crate::batch::manifest_fingerprint`] of the worker's
        /// expanded job list.
        fingerprint: String,
    },
    /// Coordinator → worker: compute global jobs `start..end`.
    Lease {
        /// Unique lease id (never reused within a run).
        lease: u64,
        /// First global job index, inclusive.
        start: usize,
        /// Past-the-end global job index.
        end: usize,
    },
    /// Worker → coordinator: one computed JSONL line.
    Result {
        /// The lease this job was computed under.
        lease: u64,
        /// Global job index.
        job: usize,
        /// The rendered `sunmap-batch/1` line (no trailing newline).
        line: String,
    },
    /// Worker → coordinator: liveness signal while computing or idle.
    Heartbeat,
    /// Coordinator → worker: no more work; exit once idle.
    Drain,
}

impl ShardMsg {
    /// Renders the frame payload.
    pub fn to_json(&self) -> String {
        match self {
            ShardMsg::Hello { name, fingerprint } => format!(
                "{{\"schema\":\"{SHARD_SCHEMA}\",\"op\":\"hello\",\"name\":{},\
                 \"fingerprint\":{}}}",
                json_string(name),
                json_string(fingerprint)
            ),
            ShardMsg::Lease { lease, start, end } => format!(
                "{{\"schema\":\"{SHARD_SCHEMA}\",\"op\":\"lease\",\"lease\":{lease},\
                 \"start\":{start},\"end\":{end}}}"
            ),
            ShardMsg::Result { lease, job, line } => format!(
                "{{\"schema\":\"{SHARD_SCHEMA}\",\"op\":\"result\",\"lease\":{lease},\
                 \"job\":{job},\"line\":{}}}",
                json_string(line)
            ),
            ShardMsg::Heartbeat => {
                format!("{{\"schema\":\"{SHARD_SCHEMA}\",\"op\":\"heartbeat\"}}")
            }
            ShardMsg::Drain => format!("{{\"schema\":\"{SHARD_SCHEMA}\",\"op\":\"drain\"}}"),
        }
    }

    /// Parses a frame payload.
    ///
    /// # Errors
    ///
    /// Malformed JSON, a wrong `schema`, an unknown `op` or missing
    /// fields, as a human-readable message.
    pub fn parse(payload: &str) -> Result<ShardMsg, String> {
        let v = Json::parse(payload).map_err(|e| format!("not JSON: {e}"))?;
        match v.get("schema").and_then(Json::as_str) {
            Some(SHARD_SCHEMA) => {}
            other => return Err(format!("schema {other:?}, expected {SHARD_SCHEMA}")),
        }
        let index = |key: &str| -> Result<u64, String> {
            let n = v
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing numeric '{key}'"))?;
            if n >= 0.0 && n.fract() == 0.0 && n <= 9_007_199_254_740_992.0 {
                Ok(n as u64)
            } else {
                Err(format!("'{key}' is not a non-negative integer"))
            }
        };
        let string = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string '{key}'"))
        };
        match v.get("op").and_then(Json::as_str) {
            Some("hello") => Ok(ShardMsg::Hello {
                name: string("name")?,
                fingerprint: string("fingerprint")?,
            }),
            Some("lease") => Ok(ShardMsg::Lease {
                lease: index("lease")?,
                start: index("start")? as usize,
                end: index("end")? as usize,
            }),
            Some("result") => Ok(ShardMsg::Result {
                lease: index("lease")?,
                job: index("job")? as usize,
                line: string("line")?,
            }),
            Some("heartbeat") => Ok(ShardMsg::Heartbeat),
            Some("drain") => Ok(ShardMsg::Drain),
            other => Err(format!(
                "unknown op {other:?} (valid: hello, lease, result, heartbeat, drain)"
            )),
        }
    }
}

/// Tuning and identity for a [`Coordinator`].
#[derive(Debug, Clone)]
pub struct CoordConfig {
    /// First global job index to dispatch (`> 0` when resuming).
    pub first_job: usize,
    /// Total jobs in the manifest; the coordinator dispatches
    /// `first_job..total_jobs`.
    pub total_jobs: usize,
    /// Jobs per lease.
    pub grain: usize,
    /// A lease not fully reported within this window is requeued.
    pub lease_timeout_ms: u64,
    /// A worker silent for this long is declared dead.
    pub heartbeat_timeout_ms: u64,
    /// Attempts per range before the run fails loudly.
    pub max_attempts: u32,
    /// [`crate::batch::manifest_fingerprint`] of the job list.
    pub fingerprint: String,
}

impl Default for CoordConfig {
    fn default() -> Self {
        CoordConfig {
            first_job: 0,
            total_jobs: 0,
            grain: 2,
            lease_timeout_ms: 60_000,
            heartbeat_timeout_ms: 30_000,
            max_attempts: 5,
            fingerprint: String::new(),
        }
    }
}

/// An input to [`Coordinator::step`]. The machine never reads a clock:
/// time only advances through `Tick`, which is what makes the chaos
/// simtest deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoordEvent {
    /// A transport connection appeared.
    Connected {
        /// The shim-assigned connection identity.
        worker: WorkerId,
    },
    /// A frame arrived from a connection.
    Frame {
        /// Sender.
        worker: WorkerId,
        /// Raw frame payload.
        payload: String,
    },
    /// A connection went away (EOF, reset, write failure).
    Disconnected {
        /// The vanished connection.
        worker: WorkerId,
    },
    /// The clock advanced; timeouts are evaluated against `now_ms`.
    Tick {
        /// Milliseconds since the run started (monotone).
        now_ms: u64,
    },
    /// Begin a graceful drain (`SIGTERM`): stop granting, finish
    /// in-flight leases, then finish.
    Drain,
}

/// An output of [`Coordinator::step`], executed by the shim (or the
/// simtest's virtual transport).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoordAction {
    /// Write a frame to a worker connection.
    Send {
        /// Recipient.
        worker: WorkerId,
        /// Frame payload.
        payload: String,
    },
    /// Append this job's line to the output — emitted strictly in
    /// global job order, which is the byte-identity guarantee.
    Deliver {
        /// Global job index.
        job: usize,
        /// The `sunmap-batch/1` line (no trailing newline).
        line: String,
    },
    /// Close a worker connection.
    Close {
        /// The connection to close.
        worker: WorkerId,
    },
    /// The run is complete (all jobs delivered, or the drain settled).
    Finished,
    /// The run failed irrecoverably (divergent duplicate, protocol
    /// violation, or a range out of retries).
    Fatal {
        /// What went wrong.
        message: String,
    },
}

#[derive(Debug)]
struct PendingRange {
    start: usize,
    end: usize,
    /// Failed issues so far (0 for a fresh range).
    attempt: u32,
    /// Backoff gate: not leased before this instant.
    ready_at_ms: u64,
}

#[derive(Debug)]
struct Lease {
    worker: WorkerId,
    remaining: BTreeSet<usize>,
    attempt: u32,
    deadline_ms: u64,
}

#[derive(Debug)]
struct WorkerInfo {
    ready: bool,
    last_seen_ms: u64,
    lease: Option<u64>,
}

/// The coordinator state machine: owns the manifest order, leases
/// ranges, arbitrates duplicates and delivers lines in job order. Pure
/// state — all IO lives in [`run_coordinator`] or the simtest.
#[derive(Debug)]
pub struct Coordinator {
    config: CoordConfig,
    now_ms: u64,
    next_lease: u64,
    pending: VecDeque<PendingRange>,
    leases: BTreeMap<u64, Lease>,
    workers: BTreeMap<WorkerId, WorkerInfo>,
    /// Accepted lines, retained for duplicate byte-comparison.
    completed: BTreeMap<usize, String>,
    next_deliver: usize,
    counters: ShardCounters,
    draining: bool,
    done: bool,
    fatal: bool,
}

impl Coordinator {
    /// A fresh coordinator for `config.first_job..config.total_jobs`,
    /// pre-split into grain-sized pending ranges.
    pub fn new(config: CoordConfig) -> Coordinator {
        let grain = config.grain.max(1);
        let mut pending = VecDeque::new();
        let mut start = config.first_job;
        while start < config.total_jobs {
            let end = (start + grain).min(config.total_jobs);
            pending.push_back(PendingRange {
                start,
                end,
                attempt: 0,
                ready_at_ms: 0,
            });
            start = end;
        }
        let next_deliver = config.first_job;
        Coordinator {
            config,
            now_ms: 0,
            next_lease: 0,
            pending,
            leases: BTreeMap::new(),
            workers: BTreeMap::new(),
            completed: BTreeMap::new(),
            next_deliver,
            counters: ShardCounters::default(),
            draining: false,
            done: false,
            fatal: false,
        }
    }

    /// The robustness counters accumulated so far.
    pub fn counters(&self) -> &ShardCounters {
        &self.counters
    }

    /// Jobs delivered so far (global cursor position).
    pub fn delivered_through(&self) -> usize {
        self.next_deliver
    }

    /// Advances the machine by one event.
    pub fn step(&mut self, event: CoordEvent) -> Vec<CoordAction> {
        let mut actions = Vec::new();
        if self.done || self.fatal {
            return actions;
        }
        match event {
            CoordEvent::Connected { worker } => {
                self.workers.insert(
                    worker,
                    WorkerInfo {
                        ready: false,
                        last_seen_ms: self.now_ms,
                        lease: None,
                    },
                );
            }
            CoordEvent::Frame { worker, payload } => self.on_frame(worker, &payload, &mut actions),
            CoordEvent::Disconnected { worker } => {
                if let Some(info) = self.workers.remove(&worker) {
                    if info.ready {
                        self.counters.worker_deaths += 1;
                    }
                    if let Some(lease) = info.lease {
                        self.requeue_lease(lease, true, &mut actions);
                    }
                    self.grant_ready(&mut actions);
                }
            }
            CoordEvent::Tick { now_ms } => {
                self.now_ms = self.now_ms.max(now_ms);
                self.expire_workers(&mut actions);
                self.expire_leases(&mut actions);
                self.grant_ready(&mut actions);
            }
            CoordEvent::Drain => {
                if !self.draining {
                    self.draining = true;
                    // Pending ranges will not run in this process;
                    // `--resume` recomputes them to identical bytes.
                    self.pending.clear();
                    let idle: Vec<WorkerId> = self
                        .workers
                        .iter()
                        .filter(|(_, info)| info.lease.is_none())
                        .map(|(&id, _)| id)
                        .collect();
                    for worker in idle {
                        self.dismiss(worker, &mut actions);
                    }
                }
            }
        }
        self.check_done(&mut actions);
        actions
    }

    fn on_frame(&mut self, worker: WorkerId, payload: &str, actions: &mut Vec<CoordAction>) {
        let known = if let Some(info) = self.workers.get_mut(&worker) {
            info.last_seen_ms = self.now_ms;
            true
        } else {
            false
        };
        let msg = match ShardMsg::parse(payload) {
            Ok(msg) => msg,
            Err(e) => {
                self.fail(format!("bad frame from worker {worker}: {e}"), actions);
                return;
            }
        };
        match msg {
            ShardMsg::Hello { fingerprint, .. } => {
                if !known {
                    return; // raced its own death; nothing to grant
                }
                if fingerprint != self.config.fingerprint || self.draining {
                    // Wrong manifest (or nothing left): send it away
                    // before it can lease a single job.
                    self.dismiss(worker, actions);
                    return;
                }
                self.workers.get_mut(&worker).expect("known").ready = true;
                self.try_grant(worker, actions);
            }
            ShardMsg::Heartbeat => {}
            ShardMsg::Result { lease, job, line } => {
                // Results are accepted even from connections already
                // declared dead — idempotence by job id is the point.
                self.on_result(lease, job, line, actions);
            }
            ShardMsg::Lease { .. } | ShardMsg::Drain => {
                self.fail(
                    format!("worker {worker} sent a coordinator-only op"),
                    actions,
                );
            }
        }
    }

    fn on_result(&mut self, lease: u64, job: usize, line: String, actions: &mut Vec<CoordAction>) {
        if job < self.config.first_job || job >= self.config.total_jobs {
            self.fail(
                format!(
                    "result for job {job} outside the dispatch window {}..{}",
                    self.config.first_job, self.config.total_jobs
                ),
                actions,
            );
            return;
        }
        match self.completed.get(&job) {
            Some(accepted) if *accepted == line => {
                self.counters.duplicate_results += 1;
                return;
            }
            Some(_) => {
                // The mapping is deterministic; two different lines for
                // one job id means corrupted state, not a slow worker.
                self.fail(
                    format!("divergent duplicate result for job {job}; aborting"),
                    actions,
                );
                return;
            }
            None => {}
        }
        self.completed.insert(job, line);
        self.counters.jobs_completed += 1;
        while let Some(line) = self.completed.get(&self.next_deliver) {
            actions.push(CoordAction::Deliver {
                job: self.next_deliver,
                line: line.clone(),
            });
            self.next_deliver += 1;
        }
        let finished_lease = match self.leases.get_mut(&lease) {
            Some(state) => {
                state.remaining.remove(&job);
                state.remaining.is_empty()
            }
            None => false, // lease already timed out; result still counted
        };
        if finished_lease {
            let state = self.leases.remove(&lease).expect("present above");
            let known = match self.workers.get_mut(&state.worker) {
                Some(info) => {
                    if info.lease == Some(lease) {
                        info.lease = None;
                    }
                    true
                }
                None => false,
            };
            if known {
                if self.draining {
                    self.dismiss(state.worker, actions);
                } else {
                    self.try_grant(state.worker, actions);
                }
            }
        }
    }

    /// Declares workers dead that have been silent past the heartbeat
    /// timeout, requeueing their leases immediately.
    fn expire_workers(&mut self, actions: &mut Vec<CoordAction>) {
        let timeout = self.config.heartbeat_timeout_ms;
        let dead: Vec<WorkerId> = self
            .workers
            .iter()
            .filter(|(_, info)| self.now_ms.saturating_sub(info.last_seen_ms) > timeout)
            .map(|(&id, _)| id)
            .collect();
        for worker in dead {
            let info = self.workers.remove(&worker).expect("collected above");
            if info.ready {
                self.counters.worker_deaths += 1;
            }
            actions.push(CoordAction::Close { worker });
            if let Some(lease) = info.lease {
                self.requeue_lease(lease, true, actions);
            }
        }
    }

    /// Requeues leases past their deadline with exponential backoff.
    fn expire_leases(&mut self, actions: &mut Vec<CoordAction>) {
        let expired: Vec<u64> = self
            .leases
            .iter()
            .filter(|(_, lease)| lease.deadline_ms <= self.now_ms)
            .map(|(&id, _)| id)
            .collect();
        for lease in expired {
            self.requeue_lease(lease, false, actions);
        }
    }

    /// Returns a lease's unreported jobs to the pending queue — or
    /// fails the run when the range is out of attempts. `death`
    /// requeues are immediate; timeout requeues back off
    /// exponentially in the lease timeout.
    fn requeue_lease(&mut self, lease: u64, death: bool, actions: &mut Vec<CoordAction>) {
        let Some(state) = self.leases.remove(&lease) else {
            return;
        };
        if let Some(info) = self.workers.get_mut(&state.worker) {
            if info.lease == Some(lease) {
                info.lease = None;
            }
        }
        // Jobs completed under another lease id need no recompute.
        let remaining: Vec<usize> = state
            .remaining
            .iter()
            .copied()
            .filter(|job| !self.completed.contains_key(job))
            .collect();
        if remaining.is_empty() || self.draining {
            return;
        }
        if state.attempt >= self.config.max_attempts {
            self.fail(
                format!(
                    "jobs {:?} failed after {} attempts; giving up",
                    remaining, state.attempt
                ),
                actions,
            );
            return;
        }
        if death {
            self.counters.ranges_requeued += 1;
        } else {
            self.counters.lease_retries += 1;
        }
        let ready_at_ms = if death {
            self.now_ms
        } else {
            let shift = u32::min(state.attempt.saturating_sub(1), 6);
            self.now_ms
                .saturating_add(self.config.lease_timeout_ms.saturating_mul(1 << shift))
        };
        // Remaining jobs may be non-contiguous when reordered results
        // landed out of order; requeue each contiguous run.
        let mut run_start = remaining[0];
        let mut prev = remaining[0];
        let push = |start: usize, end: usize, pending: &mut VecDeque<PendingRange>| {
            pending.push_back(PendingRange {
                start,
                end,
                attempt: state.attempt,
                ready_at_ms,
            });
        };
        for &job in &remaining[1..] {
            if job != prev + 1 {
                push(run_start, prev + 1, &mut self.pending);
                run_start = job;
            }
            prev = job;
        }
        push(run_start, prev + 1, &mut self.pending);
    }

    /// Grants pending ranges to every idle ready worker.
    fn grant_ready(&mut self, actions: &mut Vec<CoordAction>) {
        let idle: Vec<WorkerId> = self
            .workers
            .iter()
            .filter(|(_, info)| info.ready && info.lease.is_none())
            .map(|(&id, _)| id)
            .collect();
        for worker in idle {
            self.try_grant(worker, actions);
        }
    }

    /// Leases the first backoff-ready pending range to `worker`, if
    /// the worker is idle and such a range exists.
    fn try_grant(&mut self, worker: WorkerId, actions: &mut Vec<CoordAction>) {
        if self.done || self.fatal || self.draining {
            return;
        }
        let Some(info) = self.workers.get_mut(&worker) else {
            return;
        };
        if !info.ready || info.lease.is_some() {
            return;
        }
        let Some(index) = self
            .pending
            .iter()
            .position(|range| range.ready_at_ms <= self.now_ms)
        else {
            return;
        };
        let range = self.pending.remove(index).expect("position just found");
        let lease = self.next_lease;
        self.next_lease += 1;
        info.lease = Some(lease);
        self.leases.insert(
            lease,
            Lease {
                worker,
                remaining: (range.start..range.end).collect(),
                attempt: range.attempt + 1,
                deadline_ms: self.now_ms.saturating_add(self.config.lease_timeout_ms),
            },
        );
        self.counters.leases_granted += 1;
        actions.push(CoordAction::Send {
            worker,
            payload: ShardMsg::Lease {
                lease,
                start: range.start,
                end: range.end,
            }
            .to_json(),
        });
    }

    /// Sends a worker away: drain frame, close, forget.
    fn dismiss(&mut self, worker: WorkerId, actions: &mut Vec<CoordAction>) {
        actions.push(CoordAction::Send {
            worker,
            payload: ShardMsg::Drain.to_json(),
        });
        actions.push(CoordAction::Close { worker });
        self.workers.remove(&worker);
    }

    fn fail(&mut self, message: String, actions: &mut Vec<CoordAction>) {
        if !self.fatal {
            self.fatal = true;
            actions.push(CoordAction::Fatal { message });
        }
    }

    /// Emits `Finished` once everything is delivered — or, during a
    /// drain, once the last in-flight lease settles.
    fn check_done(&mut self, actions: &mut Vec<CoordAction>) {
        if self.done || self.fatal {
            return;
        }
        let all_delivered = self.next_deliver >= self.config.total_jobs;
        if all_delivered || (self.draining && self.leases.is_empty()) {
            self.done = true;
            let everyone: Vec<WorkerId> = self.workers.keys().copied().collect();
            for worker in everyone {
                self.dismiss(worker, actions);
            }
            actions.push(CoordAction::Finished);
        }
    }
}

/// An input to [`ShardWorker::step`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerEvent {
    /// The connection to the coordinator is up.
    Start,
    /// A frame arrived from the coordinator.
    Frame {
        /// Raw frame payload.
        payload: String,
    },
    /// The shim finished computing a job (response to
    /// [`WorkerAction::Compute`]).
    Computed {
        /// Global job index.
        job: usize,
        /// The rendered `sunmap-batch/1` line.
        line: String,
    },
    /// The clock advanced (drives heartbeats).
    Tick {
        /// Milliseconds since the worker started (monotone).
        now_ms: u64,
    },
    /// The coordinator connection went away.
    ConnectionClosed,
}

/// An output of [`ShardWorker::step`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerAction {
    /// Write a frame to the coordinator.
    Send {
        /// Frame payload.
        payload: String,
    },
    /// Compute one job and feed the line back as
    /// [`WorkerEvent::Computed`].
    Compute {
        /// Global job index.
        job: usize,
    },
    /// Stop the worker. `error` is `None` for a clean drain/finish.
    Exit {
        /// The failure, if this exit is one.
        error: Option<String>,
    },
}

/// The worker state machine: announces itself, computes leased jobs
/// strictly in lease order, heartbeats while alive, and exits when
/// drained. Pure state — all IO lives in [`run_worker`] or the
/// simtest.
#[derive(Debug)]
pub struct ShardWorker {
    name: String,
    fingerprint: String,
    heartbeat_interval_ms: u64,
    now_ms: u64,
    last_beat_ms: u64,
    /// Leased jobs not yet reported, in lease order; the head is the
    /// job currently computing (when `computing`).
    queue: VecDeque<(u64, usize)>,
    computing: bool,
    /// Whether the coordinator has demonstrably heard our `hello` (a
    /// lease or drain arrived). Until then every heartbeat re-sends
    /// it, so a lossy transport cannot strand the worker unleased.
    introduced: bool,
    draining: bool,
    exited: bool,
}

impl ShardWorker {
    /// A fresh worker that will introduce itself as `name` with the
    /// given manifest fingerprint and heartbeat every
    /// `heartbeat_interval_ms`.
    pub fn new(name: &str, fingerprint: &str, heartbeat_interval_ms: u64) -> ShardWorker {
        ShardWorker {
            name: name.to_string(),
            fingerprint: fingerprint.to_string(),
            heartbeat_interval_ms: heartbeat_interval_ms.max(1),
            now_ms: 0,
            last_beat_ms: 0,
            queue: VecDeque::new(),
            computing: false,
            introduced: false,
            draining: false,
            exited: false,
        }
    }

    /// Advances the machine by one event.
    pub fn step(&mut self, event: WorkerEvent) -> Vec<WorkerAction> {
        let mut actions = Vec::new();
        if self.exited {
            return actions;
        }
        match event {
            WorkerEvent::Start => actions.push(WorkerAction::Send {
                payload: ShardMsg::Hello {
                    name: self.name.clone(),
                    fingerprint: self.fingerprint.clone(),
                }
                .to_json(),
            }),
            WorkerEvent::Frame { payload } => self.on_frame(&payload, &mut actions),
            WorkerEvent::Computed { job, line } => self.on_computed(job, line, &mut actions),
            WorkerEvent::Tick { now_ms } => {
                self.now_ms = self.now_ms.max(now_ms);
                if self.now_ms.saturating_sub(self.last_beat_ms) >= self.heartbeat_interval_ms {
                    self.last_beat_ms = self.now_ms;
                    if !self.introduced {
                        actions.push(WorkerAction::Send {
                            payload: ShardMsg::Hello {
                                name: self.name.clone(),
                                fingerprint: self.fingerprint.clone(),
                            }
                            .to_json(),
                        });
                    }
                    actions.push(WorkerAction::Send {
                        payload: ShardMsg::Heartbeat.to_json(),
                    });
                }
            }
            WorkerEvent::ConnectionClosed => {
                // Idle disconnect is how a finished coordinator says
                // goodbye when its drain frame raced the close.
                let error = (!self.queue.is_empty())
                    .then(|| "coordinator hung up with jobs still leased".to_string());
                self.exit(error, &mut actions);
            }
        }
        actions
    }

    fn on_frame(&mut self, payload: &str, actions: &mut Vec<WorkerAction>) {
        let msg = match ShardMsg::parse(payload) {
            Ok(msg) => msg,
            Err(e) => {
                self.exit(Some(format!("bad frame from coordinator: {e}")), actions);
                return;
            }
        };
        match msg {
            ShardMsg::Lease { lease, start, end } => {
                self.introduced = true;
                // A re-grant can arrive while an earlier (timed-out)
                // lease is still computing; queue behind it.
                for job in start..end {
                    self.queue.push_back((lease, job));
                }
                if !self.computing {
                    if let Some(&(_, job)) = self.queue.front() {
                        self.computing = true;
                        actions.push(WorkerAction::Compute { job });
                    }
                }
            }
            ShardMsg::Drain => {
                self.introduced = true;
                self.draining = true;
                if self.queue.is_empty() && !self.computing {
                    self.exit(None, actions);
                }
            }
            ShardMsg::Hello { .. } | ShardMsg::Result { .. } | ShardMsg::Heartbeat => {
                self.exit(
                    Some("coordinator sent a worker-only op".to_string()),
                    actions,
                );
            }
        }
    }

    fn on_computed(&mut self, job: usize, line: String, actions: &mut Vec<WorkerAction>) {
        let Some(&(lease, head)) = self.queue.front() else {
            self.exit(
                Some(format!("computed job {job} with empty queue")),
                actions,
            );
            return;
        };
        if head != job {
            self.exit(
                Some(format!("computed job {job} but head of queue is {head}")),
                actions,
            );
            return;
        }
        self.queue.pop_front();
        actions.push(WorkerAction::Send {
            payload: ShardMsg::Result { lease, job, line }.to_json(),
        });
        if let Some(&(_, next)) = self.queue.front() {
            actions.push(WorkerAction::Compute { job: next });
        } else {
            self.computing = false;
            if self.draining {
                self.exit(None, actions);
            }
        }
    }

    fn exit(&mut self, error: Option<String>, actions: &mut Vec<WorkerAction>) {
        if !self.exited {
            self.exited = true;
            actions.push(WorkerAction::Exit { error });
        }
    }
}

/// What a finished coordinator reports.
#[derive(Debug)]
pub struct CoordinatorSummary {
    /// Jobs delivered by this run (excludes any resumed prefix).
    pub jobs_delivered: usize,
    /// Final robustness counters (schema `sunmap-shard-metrics/1`).
    pub counters: ShardCounters,
    /// Whether the run ended in a `SIGTERM` drain rather than
    /// completing the manifest.
    pub drained: bool,
}

/// Runs a [`Coordinator`] over real TCP until the manifest completes
/// or a `SIGTERM` drain settles. `on_ready` fires once with the bound
/// address; `on_line(job, line)` receives lines strictly in global job
/// order and returns whether to keep going (`false` cancels, like
/// [`crate::batch::run_batch`]).
///
/// # Errors
///
/// Bind failures, fatal protocol errors (divergent duplicates, ranges
/// out of retries) and a cancelling sink, as human-readable messages.
pub fn run_coordinator<F>(
    config: CoordConfig,
    listen: &str,
    on_ready: F,
    mut on_line: impl FnMut(usize, &str) -> bool,
) -> Result<CoordinatorSummary, String>
where
    F: FnOnce(SocketAddr),
{
    let _daemon_slot = claim_daemon_slot();
    #[cfg(unix)]
    crate::serve::install_sigterm_handler();
    let listener =
        TcpListener::bind(listen).map_err(|e| format!("cannot listen on {listen}: {e}"))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("cannot read bound address: {e}"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot set non-blocking accept: {e}"))?;

    let first_job = config.first_job;
    let mut machine = Coordinator::new(config);
    let started = Instant::now();
    let reader_stop = AtomicBool::new(false);
    let (event_tx, event_rx) = mpsc::channel::<CoordEvent>();
    let mut writers: BTreeMap<WorkerId, TcpStream> = BTreeMap::new();
    let mut next_worker: WorkerId = 0;
    let mut drain_sent = false;
    let mut finished = false;
    let mut drained = false;
    let mut fatal: Option<String> = None;
    let mut cancelled = false;

    on_ready(addr);
    thread::scope(|scope| {
        let mut queue: VecDeque<CoordEvent> = VecDeque::new();
        queue.push_back(CoordEvent::Tick { now_ms: 0 });
        'run: loop {
            // Accept every waiting connection, then drain one event.
            // WouldBlock and real accept errors alike fall through to
            // the event loop and retry next pass.
            while let Ok((mut stream, _peer)) = listener.accept() {
                let worker = next_worker;
                next_worker += 1;
                let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
                match stream.try_clone() {
                    Ok(writer) => {
                        writers.insert(worker, writer);
                    }
                    Err(_) => continue,
                }
                let tx = event_tx.clone();
                let stop = &reader_stop;
                scope.spawn(move || {
                    while let Ok(Some(payload)) = read_frame_draining(&mut stream, stop, None) {
                        if tx.send(CoordEvent::Frame { worker, payload }).is_err() {
                            return;
                        }
                    }
                    let _ = tx.send(CoordEvent::Disconnected { worker });
                });
                queue.push_back(CoordEvent::Connected { worker });
            }
            if queue.is_empty() {
                match event_rx.recv_timeout(Duration::from_millis(50)) {
                    Ok(event) => queue.push_back(event),
                    Err(mpsc::RecvTimeoutError::Timeout) => {}
                    Err(mpsc::RecvTimeoutError::Disconnected) => unreachable!("we hold a sender"),
                }
                while let Ok(event) = event_rx.try_recv() {
                    queue.push_back(event);
                }
                let now_ms = u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX);
                queue.push_back(CoordEvent::Tick { now_ms });
            }
            if !drain_sent && SHUTDOWN.load(Ordering::SeqCst) {
                drain_sent = true;
                drained = true;
                queue.push_front(CoordEvent::Drain);
            }
            while let Some(event) = queue.pop_front() {
                for action in machine.step(event) {
                    match action {
                        CoordAction::Send { worker, payload } => {
                            let failed = match writers.get_mut(&worker) {
                                Some(stream) => write_frame(stream, &payload).is_err(),
                                None => false, // already closed
                            };
                            if failed {
                                writers.remove(&worker);
                                queue.push_back(CoordEvent::Disconnected { worker });
                            }
                        }
                        CoordAction::Deliver { job, line } => {
                            if !on_line(job, &line) {
                                cancelled = true;
                                break 'run;
                            }
                        }
                        CoordAction::Close { worker } => {
                            if let Some(stream) = writers.remove(&worker) {
                                let _ = stream.shutdown(std::net::Shutdown::Both);
                            }
                        }
                        CoordAction::Finished => finished = true,
                        CoordAction::Fatal { message } => fatal = Some(message),
                    }
                }
                if finished || fatal.is_some() {
                    break 'run;
                }
            }
        }
        reader_stop.store(true, Ordering::SeqCst);
        for (_, stream) in writers.iter() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        drop(listener);
    });
    if let Some(message) = fatal {
        return Err(message);
    }
    if cancelled {
        return Err("output sink cancelled the run".to_string());
    }
    Ok(CoordinatorSummary {
        jobs_delivered: machine.delivered_through() - first_job,
        counters: machine.counters().clone(),
        drained,
    })
}

/// What a finished worker reports.
#[derive(Debug)]
pub struct WorkerSummary {
    /// Jobs this worker computed and reported.
    pub jobs_computed: usize,
}

/// Runs a [`ShardWorker`] over real TCP against `jobs` — the **full**
/// global job list of the same manifest the coordinator loaded (lease
/// indices index into it directly) — until drained or disconnected.
///
/// # Errors
///
/// Connection failures, protocol violations, and a coordinator that
/// hangs up while jobs are still leased.
pub fn run_worker(
    jobs: &[BatchJob],
    fingerprint: &str,
    name: &str,
    connect: &str,
    heartbeat_interval_ms: u64,
) -> Result<WorkerSummary, String> {
    let mut stream =
        TcpStream::connect(connect).map_err(|e| format!("cannot connect to {connect}: {e}"))?;
    stream
        .set_read_timeout(Some(POLL_INTERVAL))
        .map_err(|e| format!("cannot arm read timeout: {e}"))?;
    let mut read_half = stream
        .try_clone()
        .map_err(|e| format!("cannot clone stream: {e}"))?;

    let mut machine = ShardWorker::new(name, fingerprint, heartbeat_interval_ms);
    let started = Instant::now();
    let reader_stop = AtomicBool::new(false);
    let (event_tx, event_rx) = mpsc::channel::<WorkerEvent>();
    let (compute_tx, compute_rx) = mpsc::channel::<usize>();
    let mut computed = 0usize;
    let mut outcome: Result<(), String> = Ok(());

    thread::scope(|scope| {
        let reader_tx = event_tx.clone();
        let stop = &reader_stop;
        scope.spawn(move || {
            while let Ok(Some(payload)) = read_frame_draining(&mut read_half, stop, None) {
                if reader_tx.send(WorkerEvent::Frame { payload }).is_err() {
                    return;
                }
            }
            let _ = reader_tx.send(WorkerEvent::ConnectionClosed);
        });
        // Jobs compute off the event loop so heartbeats keep flowing
        // under a long mapping.
        let compute_out = event_tx.clone();
        scope.spawn(move || {
            let mut cache = LruLibraryCache::new(usize::MAX);
            for job in compute_rx {
                let line = run_job(&jobs[job], &mut cache);
                if compute_out
                    .send(WorkerEvent::Computed { job, line })
                    .is_err()
                {
                    return;
                }
            }
        });

        let mut queue: VecDeque<WorkerEvent> = VecDeque::new();
        queue.push_back(WorkerEvent::Start);
        'run: loop {
            if queue.is_empty() {
                match event_rx.recv_timeout(Duration::from_millis(50)) {
                    Ok(event) => queue.push_back(event),
                    Err(mpsc::RecvTimeoutError::Timeout) => {}
                    Err(mpsc::RecvTimeoutError::Disconnected) => unreachable!("we hold a sender"),
                }
                let now_ms = u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX);
                queue.push_back(WorkerEvent::Tick { now_ms });
            }
            while let Some(event) = queue.pop_front() {
                if matches!(event, WorkerEvent::Computed { .. }) {
                    computed += 1;
                }
                for action in machine.step(event) {
                    match action {
                        WorkerAction::Send { payload } => {
                            if write_frame(&mut stream, &payload).is_err() {
                                queue.push_back(WorkerEvent::ConnectionClosed);
                            }
                        }
                        WorkerAction::Compute { job } => {
                            if job >= jobs.len() {
                                outcome = Err(format!(
                                    "leased job {job} but the manifest has {} jobs \
                                     (fingerprint mismatch?)",
                                    jobs.len()
                                ));
                                break 'run;
                            }
                            compute_tx.send(job).expect("compute thread alive");
                        }
                        WorkerAction::Exit { error } => {
                            if let Some(message) = error {
                                outcome = Err(message);
                            }
                            break 'run;
                        }
                    }
                }
            }
        }
        reader_stop.store(true, Ordering::SeqCst);
        let _ = stream.shutdown(std::net::Shutdown::Both);
        drop(compute_tx);
    });
    outcome.map(|()| WorkerSummary {
        jobs_computed: computed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{manifest_fingerprint, run_batch, BatchManifest};

    fn payload_of(action: &CoordAction) -> &str {
        match action {
            CoordAction::Send { payload, .. } => payload,
            other => panic!("expected Send, got {other:?}"),
        }
    }

    #[test]
    fn messages_round_trip_including_awkward_lines() {
        let msgs = [
            ShardMsg::Hello {
                name: "w-1".to_string(),
                fingerprint: "abc-4".to_string(),
            },
            ShardMsg::Lease {
                lease: 7,
                start: 10,
                end: 14,
            },
            ShardMsg::Result {
                lease: 7,
                job: 10,
                line: "{\"schema\":\"sunmap-batch/1\",\"job\":\"a\\\"b|1\"}".to_string(),
            },
            ShardMsg::Heartbeat,
            ShardMsg::Drain,
        ];
        for msg in msgs {
            let wire = msg.to_json();
            assert_eq!(ShardMsg::parse(&wire).unwrap(), msg, "{wire}");
        }
        assert!(ShardMsg::parse("{\"op\":\"lease\"}").is_err(), "no schema");
        assert!(
            ShardMsg::parse("{\"schema\":\"sunmap-shard/1\",\"op\":\"warp\"}").is_err(),
            "unknown op"
        );
        assert!(
            ShardMsg::parse(
                "{\"schema\":\"sunmap-shard/1\",\"op\":\"lease\",\"lease\":-1,\
                             \"start\":0,\"end\":1}"
            )
            .is_err(),
            "negative index"
        );
    }

    fn test_config(total: usize, grain: usize) -> CoordConfig {
        CoordConfig {
            total_jobs: total,
            grain,
            lease_timeout_ms: 100,
            heartbeat_timeout_ms: 300,
            max_attempts: 3,
            fingerprint: "fp-test".to_string(),
            ..CoordConfig::default()
        }
    }

    fn hello(worker: WorkerId) -> CoordEvent {
        CoordEvent::Frame {
            worker,
            payload: ShardMsg::Hello {
                name: format!("w{worker}"),
                fingerprint: "fp-test".to_string(),
            }
            .to_json(),
        }
    }

    fn result(worker: WorkerId, lease: u64, job: usize) -> CoordEvent {
        CoordEvent::Frame {
            worker,
            payload: ShardMsg::Result {
                lease,
                job,
                line: format!("line-{job}"),
            }
            .to_json(),
        }
    }

    #[test]
    fn happy_path_delivers_in_order_and_finishes() {
        let mut c = Coordinator::new(test_config(4, 2));
        assert!(c.step(CoordEvent::Connected { worker: 0 }).is_empty());
        let granted = c.step(hello(0));
        assert_eq!(granted.len(), 1);
        assert!(payload_of(&granted[0]).contains("\"start\":0"));
        // Results for the first lease, deliberately out of order: job 1
        // is buffered until job 0 lands.
        assert!(c.step(result(0, 0, 1)).is_empty());
        let actions = c.step(result(0, 0, 0));
        assert!(matches!(&actions[0], CoordAction::Deliver { job: 0, .. }));
        assert!(matches!(&actions[1], CoordAction::Deliver { job: 1, .. }));
        // Completing the lease grants the next range immediately.
        assert!(payload_of(&actions[2]).contains("\"start\":2"));
        c.step(result(0, 1, 2));
        let finale = c.step(result(0, 1, 3));
        assert!(finale.iter().any(|a| matches!(a, CoordAction::Finished)));
        assert_eq!(c.counters().jobs_completed, 4);
        assert_eq!(c.counters().leases_granted, 2);
        assert_eq!(c.counters().worker_deaths, 0);
    }

    #[test]
    fn equal_duplicates_dedup_and_divergent_duplicates_are_fatal() {
        let mut c = Coordinator::new(test_config(2, 2));
        c.step(CoordEvent::Connected { worker: 0 });
        c.step(hello(0));
        c.step(result(0, 0, 0));
        assert!(c.step(result(0, 0, 0)).is_empty(), "equal dup is silent");
        assert_eq!(c.counters().duplicate_results, 1);
        let divergent = CoordEvent::Frame {
            worker: 0,
            payload: ShardMsg::Result {
                lease: 0,
                job: 0,
                line: "something else".to_string(),
            }
            .to_json(),
        };
        let actions = c.step(divergent);
        assert!(
            actions.iter().any(
                |a| matches!(a, CoordAction::Fatal { message } if message.contains("divergent"))
            ),
            "{actions:?}"
        );
    }

    #[test]
    fn dead_worker_requeues_and_a_range_out_of_retries_is_fatal() {
        let mut c = Coordinator::new(test_config(2, 2));
        // Three workers in sequence, each dying with the lease held:
        // attempts 1..=3, and max_attempts = 3 makes the fourth grant
        // impossible.
        for worker in 0..3u64 {
            c.step(CoordEvent::Connected { worker });
            let granted = c.step(hello(worker));
            assert_eq!(granted.len(), 1, "worker {worker} gets the range");
            let actions = c.step(CoordEvent::Disconnected { worker });
            if worker < 2 {
                assert!(actions.is_empty(), "requeued silently");
            } else {
                assert!(
                    actions
                        .iter()
                        .any(|a| matches!(a, CoordAction::Fatal { message } if message.contains("giving up"))),
                    "{actions:?}"
                );
            }
        }
        assert_eq!(c.counters().worker_deaths, 3);
        assert_eq!(c.counters().ranges_requeued, 2);
    }

    #[test]
    fn lease_timeout_backs_off_then_reissues() {
        let mut c = Coordinator::new(test_config(2, 2));
        c.step(CoordEvent::Connected { worker: 0 });
        c.step(hello(0));
        // Past the lease deadline: the range requeues with backoff but
        // worker 0 (still alive, now idle) cannot take it until the
        // backoff expires.
        let actions = c.step(CoordEvent::Tick { now_ms: 101 });
        assert!(actions.is_empty(), "backoff gates the re-grant");
        assert_eq!(c.counters().lease_retries, 1);
        let actions = c.step(CoordEvent::Tick { now_ms: 202 });
        assert_eq!(actions.len(), 1, "backoff expired: re-granted");
        assert!(payload_of(&actions[0]).contains("\"lease\":1"));
        // The original (timed-out) lease's late results still count.
        let finale = c.step(result(0, 0, 1));
        assert!(finale.is_empty(), "job 1 buffered behind job 0");
        let finale = c.step(result(0, 1, 0));
        assert!(finale.iter().any(|a| matches!(a, CoordAction::Finished)));
    }

    #[test]
    fn silent_worker_is_declared_dead_by_heartbeat_timeout() {
        let mut c = Coordinator::new(test_config(2, 2));
        c.step(CoordEvent::Connected { worker: 0 });
        c.step(hello(0));
        let actions = c.step(CoordEvent::Tick { now_ms: 301 });
        assert!(
            actions
                .iter()
                .any(|a| matches!(a, CoordAction::Close { worker: 0 })),
            "{actions:?}"
        );
        assert_eq!(c.counters().worker_deaths, 1);
        // A heartbeat after the clock advanced resets the deadline.
        let mut c = Coordinator::new(test_config(2, 2));
        c.step(CoordEvent::Connected { worker: 0 });
        c.step(hello(0));
        c.step(CoordEvent::Tick { now_ms: 250 });
        c.step(CoordEvent::Frame {
            worker: 0,
            payload: ShardMsg::Heartbeat.to_json(),
        });
        let actions = c.step(CoordEvent::Tick { now_ms: 301 });
        assert!(
            !actions
                .iter()
                .any(|a| matches!(a, CoordAction::Close { .. })),
            "{actions:?}"
        );
        assert_eq!(c.counters().worker_deaths, 0);
    }

    #[test]
    fn mismatched_fingerprint_is_dismissed_before_leasing() {
        let mut c = Coordinator::new(test_config(2, 2));
        c.step(CoordEvent::Connected { worker: 0 });
        let actions = c.step(CoordEvent::Frame {
            worker: 0,
            payload: ShardMsg::Hello {
                name: "stranger".to_string(),
                fingerprint: "some-other-manifest".to_string(),
            }
            .to_json(),
        });
        assert!(payload_of(&actions[0]).contains("\"op\":\"drain\""));
        assert!(matches!(actions[1], CoordAction::Close { worker: 0 }));
        assert_eq!(c.counters().leases_granted, 0);
    }

    #[test]
    fn drain_finishes_after_inflight_leases_settle() {
        let mut c = Coordinator::new(test_config(6, 2));
        c.step(CoordEvent::Connected { worker: 0 });
        c.step(hello(0)); // leased 0..2
        let actions = c.step(CoordEvent::Drain);
        assert!(
            !actions.iter().any(|a| matches!(a, CoordAction::Finished)),
            "lease 0 still in flight: {actions:?}"
        );
        c.step(result(0, 0, 0));
        let actions = c.step(result(0, 0, 1));
        assert!(
            actions.iter().any(|a| matches!(a, CoordAction::Finished)),
            "{actions:?}"
        );
        // Jobs 0..2 delivered; 2..6 left for --resume.
        assert_eq!(c.delivered_through(), 2);
    }

    #[test]
    fn worker_machine_computes_sequentially_and_drains_clean() {
        let mut w = ShardWorker::new("w0", "fp-test", 50);
        let actions = w.step(WorkerEvent::Start);
        assert!(matches!(&actions[0], WorkerAction::Send { payload } if payload.contains("hello")));
        let actions = w.step(WorkerEvent::Frame {
            payload: ShardMsg::Lease {
                lease: 0,
                start: 3,
                end: 5,
            }
            .to_json(),
        });
        assert_eq!(actions, vec![WorkerAction::Compute { job: 3 }]);
        let actions = w.step(WorkerEvent::Computed {
            job: 3,
            line: "l3".to_string(),
        });
        assert!(
            matches!(&actions[0], WorkerAction::Send { payload } if payload.contains("\"job\":3"))
        );
        assert_eq!(actions[1], WorkerAction::Compute { job: 4 });
        // Drain mid-compute: finish the queue first, then exit clean.
        assert!(w
            .step(WorkerEvent::Frame {
                payload: ShardMsg::Drain.to_json(),
            })
            .is_empty());
        let actions = w.step(WorkerEvent::Computed {
            job: 4,
            line: "l4".to_string(),
        });
        assert!(matches!(&actions[0], WorkerAction::Send { .. }));
        assert_eq!(actions[1], WorkerAction::Exit { error: None });
        // Heartbeats fire on the interval.
        let mut w = ShardWorker::new("w0", "fp-test", 50);
        w.step(WorkerEvent::Start);
        assert!(w.step(WorkerEvent::Tick { now_ms: 20 }).is_empty());
        let actions = w.step(WorkerEvent::Tick { now_ms: 60 });
        // Not yet introduced, so the beat re-sends the hello first.
        assert!(matches!(&actions[0], WorkerAction::Send { payload } if payload.contains("hello")));
        assert!(
            matches!(&actions[1], WorkerAction::Send { payload } if payload.contains("heartbeat"))
        );
    }

    /// End-to-end over real TCP, in process: a coordinator and two
    /// workers assemble the exact bytes a single-process run produces.
    #[test]
    fn tcp_shims_reproduce_the_single_process_bytes() {
        let manifest = BatchManifest::parse(
            "app dsp\nobjective power\nobjective delay\nrouting MP\nrouting DO\ncapacity 1000\n",
        )
        .unwrap();
        let jobs = manifest.jobs().unwrap();
        let fingerprint = manifest_fingerprint(&jobs);
        let mut oracle = Vec::new();
        run_batch(&jobs, 1, |_, line| {
            oracle.push(line.to_string());
            true
        });

        let config = CoordConfig {
            total_jobs: jobs.len(),
            grain: 1,
            fingerprint: fingerprint.clone(),
            ..CoordConfig::default()
        };
        let (addr_tx, addr_rx) = mpsc::channel();
        let mut delivered: Vec<(usize, String)> = Vec::new();
        thread::scope(|scope| {
            let coordinator = scope.spawn(|| {
                run_coordinator(
                    config,
                    "127.0.0.1:0",
                    |addr| addr_tx.send(addr).expect("report addr"),
                    |job, line| {
                        delivered.push((job, line.to_string()));
                        true
                    },
                )
            });
            let addr = addr_rx.recv().expect("coordinator comes up").to_string();
            let workers: Vec<_> = (0..2)
                .map(|i| {
                    let (jobs, fp, addr) = (&jobs, &fingerprint, addr.clone());
                    scope.spawn(move || run_worker(jobs, fp, &format!("w{i}"), &addr, 1_000))
                })
                .collect();
            let summary = coordinator.join().expect("no panic").expect("clean finish");
            assert_eq!(summary.jobs_delivered, jobs.len());
            assert_eq!(summary.counters.jobs_completed as usize, jobs.len());
            let mut computed = 0;
            for worker in workers {
                computed += worker
                    .join()
                    .expect("no panic")
                    .expect("clean exit")
                    .jobs_computed;
            }
            assert_eq!(computed, jobs.len(), "no job computed twice");
        });
        let lines: Vec<String> = delivered.iter().map(|(_, l)| l.clone()).collect();
        let order: Vec<usize> = delivered.iter().map(|(j, _)| *j).collect();
        assert_eq!(order, (0..jobs.len()).collect::<Vec<_>>(), "in order");
        assert_eq!(lines, oracle, "byte-identical to the single-process run");
    }
}
