//! Pareto-front extraction for design-space exploration (paper §6.3,
//! Fig. 9b: "a set of Pareto points ... from which the optimum design
//! point can be chosen, thereby performing area-power-performance
//! tradeoffs").

/// One design point in a two-objective trade-off space (both axes
/// minimised).
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoPoint {
    /// Human-readable description of the mapping that produced this
    /// point (objective and routing function).
    pub label: String,
    /// First minimised metric (e.g. floorplan area in mm²).
    pub x: f64,
    /// Second minimised metric (e.g. power in mW).
    pub y: f64,
}

impl ParetoPoint {
    /// Whether `self` dominates `other`: no worse on both axes and
    /// strictly better on at least one.
    pub fn dominates(&self, other: &ParetoPoint) -> bool {
        self.x <= other.x && self.y <= other.y && (self.x < other.x || self.y < other.y)
    }
}

/// Extracts the Pareto front (non-dominated subset) of `points`,
/// sorted by increasing `x`. Duplicate coordinates keep one
/// representative.
///
/// # Examples
///
/// ```
/// use sunmap::{pareto_front, ParetoPoint};
///
/// let mk = |l: &str, x, y| ParetoPoint { label: l.into(), x, y };
/// let front = pareto_front(&[
///     mk("a", 1.0, 5.0),
///     mk("b", 2.0, 2.0),
///     mk("c", 3.0, 3.0), // dominated by b
///     mk("d", 4.0, 1.0),
/// ]);
/// let labels: Vec<_> = front.iter().map(|p| p.label.as_str()).collect();
/// assert_eq!(labels, ["a", "b", "d"]);
/// ```
pub fn pareto_front(points: &[ParetoPoint]) -> Vec<ParetoPoint> {
    let mut front: Vec<ParetoPoint> = Vec::new();
    for p in points {
        if points.iter().any(|q| q.dominates(p)) {
            continue;
        }
        if front
            .iter()
            .any(|q| (q.x - p.x).abs() < 1e-12 && (q.y - p.y).abs() < 1e-12)
        {
            continue;
        }
        front.push(p.clone());
    }
    front.sort_by(|a, b| a.x.total_cmp(&b.x).then_with(|| a.y.total_cmp(&b.y)));
    front
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(label: &str, x: f64, y: f64) -> ParetoPoint {
        ParetoPoint {
            label: label.to_string(),
            x,
            y,
        }
    }

    #[test]
    fn no_front_member_dominates_another() {
        let pts = vec![
            mk("a", 3.0, 1.0),
            mk("b", 1.0, 3.0),
            mk("c", 2.0, 2.0),
            mk("d", 3.0, 3.0),
            mk("e", 0.5, 4.0),
        ];
        let front = pareto_front(&pts);
        for p in &front {
            for q in &front {
                assert!(!p.dominates(q), "{} dominates {}", p.label, q.label);
            }
        }
        assert_eq!(front.len(), 4); // d is dominated by c
    }

    #[test]
    fn every_excluded_point_is_dominated() {
        let pts = vec![mk("a", 1.0, 1.0), mk("b", 2.0, 2.0), mk("c", 0.5, 3.0)];
        let front = pareto_front(&pts);
        for p in &pts {
            let included = front.iter().any(|q| q.label == p.label);
            if !included {
                assert!(
                    pts.iter().any(|q| q.dominates(p)),
                    "{} excluded but undominated",
                    p.label
                );
            }
        }
    }

    #[test]
    fn duplicates_collapse() {
        let pts = vec![mk("a", 1.0, 1.0), mk("a2", 1.0, 1.0)];
        assert_eq!(pareto_front(&pts).len(), 1);
    }

    #[test]
    fn single_point_is_its_own_front() {
        let pts = vec![mk("solo", 7.0, 9.0)];
        assert_eq!(pareto_front(&pts), pts);
    }

    #[test]
    fn empty_input_gives_empty_front() {
        assert!(pareto_front(&[]).is_empty());
    }

    #[test]
    fn front_is_sorted_by_x() {
        let pts = vec![mk("a", 3.0, 1.0), mk("b", 1.0, 3.0), mk("c", 2.0, 2.0)];
        let xs: Vec<f64> = pareto_front(&pts).iter().map(|p| p.x).collect();
        assert!(xs.windows(2).all(|w| w[0] <= w[1]));
    }
}
