//! # SUNMAP: automatic NoC topology selection and generation
//!
//! A Rust reproduction of *"SUNMAP: A Tool for Automatic Topology
//! Selection and Generation for NoCs"* (Murali & De Micheli, DAC 2004).
//!
//! Given an application *core graph* (cores plus directed bandwidth
//! demands), SUNMAP:
//!
//! 1. **maps** the cores onto every topology in a library — mesh,
//!    torus, hypercube, 3-stage Clos, k-ary n-fly butterfly — under a
//!    chosen routing function and design objective, checking bandwidth
//!    and area constraints with a built-in floorplanner and 0.1 µm
//!    area–power libraries (phase 1);
//! 2. **selects** the best topology among the feasible mappings
//!    (phase 2);
//! 3. **generates** the network components of the chosen NoC as
//!    SystemC-style soft macros (phase 3).
//!
//! # Quickstart
//!
//! ```
//! use sunmap::{Objective, RoutingFunction, Sunmap};
//! use sunmap::traffic::benchmarks;
//!
//! // The paper's VOPD benchmark: 12 cores, 500 MB/s links.
//! let tool = Sunmap::builder(benchmarks::vopd())
//!     .link_capacity(500.0)
//!     .routing(RoutingFunction::MinPath)
//!     .objective(Objective::MinPower)
//!     .build();
//! let exploration = tool.explore()?;
//! let best = exploration.best_candidate().expect("VOPD maps feasibly");
//! // §6.1: the butterfly wins for VOPD.
//! assert_eq!(best.kind.name(), "Butterfly");
//! # Ok::<(), sunmap::SunmapError>(())
//! ```
//!
//! The subsystem crates are re-exported as modules: [`topology`],
//! [`traffic`], [`floorplan`], [`power`], [`mapping`], [`sim`] and
//! [`gen`]. The [`batch`] module turns the flow into a throughput
//! engine: manifest-driven grids of applications × configurations,
//! sharded across threads with shared per-topology route state. The
//! [`request`] module is the unified entry point every surface builds
//! on (one serializable [`ExploreRequest`], one validate path, one
//! report renderer), and [`serve`] + [`metrics`] turn it into a
//! long-running daemon with warm route caches and live counters. The
//! [`frame`] module is the shared length-prefixed wire codec, and
//! [`shard`] scales a batch across fault-tolerant worker *processes*:
//! an IO-free coordinator/worker state-machine pair whose chaos
//! harness lives in [`shard_sim`].

pub mod batch;
mod flow;
pub mod frame;
mod json;
pub mod metrics;
mod pareto;
pub mod request;
pub mod schema;
pub mod serve;
pub mod shard;
pub mod shard_sim;
mod sweep;

pub use flow::{
    Exploration, GeneratedDesign, SelectionPolicy, Sunmap, SunmapBuilder, SunmapError,
    TopologyCandidate, Validation, ValidationEntry,
};
pub use pareto::{pareto_front, ParetoPoint};
pub use sweep::{pareto_exploration, routing_bandwidth_sweep, RoutingSweepEntry};

/// Re-export of the floorplanner crate.
pub use sunmap_floorplan as floorplan;
/// Re-export of the component-generator crate.
pub use sunmap_gen as gen;
/// Re-export of the mapping-engine crate.
pub use sunmap_mapping as mapping;
/// Re-export of the area–power model crate.
pub use sunmap_power as power;
/// Re-export of the NoC simulator crate.
pub use sunmap_sim as sim;
/// Re-export of the topology library crate.
pub use sunmap_topology as topology;
/// Re-export of the traffic-model crate.
pub use sunmap_traffic as traffic;

pub use request::ExploreRequest;

// The names a typical user needs, at the crate root.
pub use sunmap_mapping::{
    Constraints, CostReport, Mapper, MapperConfig, Mapping, MappingError, Objective,
    RoutingFunction, SwapStrategy, TablePrep,
};
pub use sunmap_topology::{TopologyGraph, TopologyKind};
pub use sunmap_traffic::{AppSource, CoreGraph};
