//! `sunmap serve`: a warm-cache mapping daemon.
//!
//! The daemon listens on TCP and answers length-prefixed JSON frames
//! (schema `sunmap-serve/1`). Each frame is a 4-byte big-endian length
//! followed by that many bytes of UTF-8 JSON:
//!
//! ```text
//! -> {"op":"ping"}
//! <- {"schema":"sunmap-serve/1","ok":true,"op":"ping"}
//! -> {"op":"explore","request":{"app":"vopd","objective":"power"}}
//! <- {"schema":"sunmap-serve/1","ok":true,"op":"explore",
//!     "cache_hit":false,"report":{"schema":"sunmap-report/1",...}}
//! -> {"op":"stats"}
//! <- {"schema":"sunmap-serve/1","ok":true,"op":"stats",
//!     "metrics":{"schema":"sunmap-serve-metrics/1",...}}
//! -> {"op":"shutdown"}
//! <- {"schema":"sunmap-serve/1","ok":true,"op":"shutdown","draining":true}
//! ```
//!
//! The `report` (and `metrics`) object is always the envelope's *last*
//! field, so clients can recover the raw report bytes with
//! [`report_slice`] instead of re-serializing — which is how the serve
//! integration test asserts byte-identity against the one-shot CLI.
//!
//! Explore frames parse into the same [`ExploreRequest`] as every
//! other surface and execute through the same [`execute`] path, with
//! route tables served from a shared [`LruLibraryCache`] — the warm
//! cache is the point of running a daemon instead of a process per
//! request. Counters and per-phase latency histograms live in a shared
//! [`Metrics`], answered live by `stats` frames and returned (and
//! dumped by the CLI) on shutdown.
//!
//! When configured with a log path the daemon appends one line per
//! explore request (schema `sunmap-serve-log/1`); [`verify_replay`]
//! re-runs every logged request through the one-shot
//! [`RequestRunner`] and fails unless each reproduces its logged
//! report byte-for-byte.
//!
//! Shutdown is graceful: a `shutdown` frame (or `SIGTERM` on Unix)
//! stops the accept loop, in-flight requests run to completion and
//! their responses are written, then the workers exit.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{mpsc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use crate::frame::read_frame_draining;
use crate::json::Json;
use crate::metrics::Metrics;
use crate::request::{execute, ExploreRequest, LruLibraryCache, RequestRunner};
use crate::schema::{REPORT_SCHEMA, SERVE_LOG_SCHEMA, SERVE_SCHEMA};
use sunmap_mapping::timing;

pub use crate::frame::{read_frame, write_frame, MAX_FRAME_BYTES};

/// How long a worker blocks on the connection queue or a socket read
/// before re-checking the drain flag.
pub(crate) const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// The process-wide drain flag: set by a `shutdown` frame or by
/// `SIGTERM`. Static because a signal handler cannot capture state;
/// one daemon per process is the supported shape — enforced by
/// [`DAEMON_GUARD`], which [`serve`] and the shard coordinator/worker
/// shims hold for their whole run so concurrent tests cannot trip each
/// other's drain.
pub(crate) static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Serializes daemons within one process (see [`SHUTDOWN`]).
pub(crate) static DAEMON_GUARD: Mutex<()> = Mutex::new(());

/// Takes the daemon slot for this process: resets the drain flag and
/// returns the guard that keeps other daemons out until dropped.
pub(crate) fn claim_daemon_slot() -> std::sync::MutexGuard<'static, ()> {
    // A test that panicked while holding the slot poisons the lock;
    // the slot itself is still perfectly usable.
    let guard = DAEMON_GUARD
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    SHUTDOWN.store(false, Ordering::SeqCst);
    guard
}

/// Configuration for [`serve`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7420` (`:0` picks a free port).
    pub listen: String,
    /// Worker threads answering frames.
    pub workers: usize,
    /// Candidate libraries kept warm in the LRU cache.
    pub cache_entries: usize,
    /// Append-only request-replay log, if any.
    pub log_path: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            listen: "127.0.0.1:0".to_string(),
            workers: 2,
            cache_entries: 8,
            log_path: None,
        }
    }
}

/// What a finished daemon reports back to its caller.
#[derive(Debug)]
pub struct ServeSummary {
    /// The final metrics snapshot (schema `sunmap-serve-metrics/1`).
    pub metrics_json: String,
    /// Explore requests answered successfully.
    pub explore_requests: u64,
}

/// The raw bytes of a serve envelope's trailing `report` object — the
/// exact line the one-shot CLI would print for the same request.
/// (Works on replay-log lines too; their `report` field is also last.)
/// `None` if `envelope` has no `"report"` field or is an error
/// response.
pub fn report_slice(envelope: &str) -> Option<&str> {
    // Safe as a byte search: the emitter escapes quotes inside JSON
    // strings, so the unescaped `,"report":` sequence only ever
    // appears as the field delimiter.
    let start = envelope.find(",\"report\":")? + ",\"report\":".len();
    let body = envelope.get(start..envelope.len() - 1)?;
    body.starts_with('{').then_some(body)
}

/// Runs the daemon until a `shutdown` frame or `SIGTERM` drains it.
/// `on_ready` fires once with the bound address (which matters when
/// `listen` ends in `:0`), before any frame is accepted.
///
/// # Errors
///
/// Bind/accept failures and replay-log creation failures, as
/// human-readable messages.
pub fn serve<F>(config: &ServeConfig, on_ready: F) -> Result<ServeSummary, String>
where
    F: FnOnce(SocketAddr),
{
    let listener = TcpListener::bind(&config.listen)
        .map_err(|e| format!("cannot listen on {}: {e}", config.listen))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("cannot read bound address: {e}"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot set non-blocking accept: {e}"))?;
    let log = match &config.log_path {
        Some(path) => {
            let file = File::create(path)
                .map_err(|e| format!("cannot create log {}: {e}", path.display()))?;
            Some(Mutex::new(BufWriter::new(file)))
        }
        None => None,
    };

    let _daemon_slot = claim_daemon_slot();
    #[cfg(unix)]
    install_sigterm_handler();
    timing::set_floorplan_timing(true);
    timing::take_floorplan_nanos(); // discard anything accumulated before

    let metrics = Metrics::new();
    let cache = Mutex::new(LruLibraryCache::new(config.cache_entries));
    let log_seq = AtomicU64::new(0);
    let server = Server {
        metrics: &metrics,
        cache: &cache,
        log: log.as_ref(),
        log_seq: &log_seq,
    };

    on_ready(addr);
    let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = mpsc::channel();
    let rx = Mutex::new(rx);
    let mut accept_error = None;
    thread::scope(|scope| {
        for _ in 0..config.workers.max(1) {
            scope.spawn(|| server.worker_loop(&rx));
        }
        while !SHUTDOWN.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(10));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    // Accept failures are fatal: flag the drain so the
                    // workers exit, then report the failure.
                    SHUTDOWN.store(true, Ordering::SeqCst);
                    accept_error = Some(format!("accept failed: {e}"));
                }
            }
        }
        drop(tx); // workers drain queued connections, then exit
    });
    timing::set_floorplan_timing(false);
    if let Some(error) = accept_error {
        return Err(error);
    }

    if let Some(log) = &log {
        let _ = log.lock().expect("log lock").flush();
    }
    Ok(ServeSummary {
        metrics_json: metrics.to_json(),
        explore_requests: metrics.explore_requests.load(Ordering::Relaxed),
    })
}

/// Installs a `SIGTERM` handler that flags the drain, so `kill <pid>`
/// gets the same graceful shutdown as a `shutdown` frame.
#[cfg(unix)]
pub(crate) fn install_sigterm_handler() {
    use std::os::raw::c_int;
    const SIGTERM: c_int = 15;
    // SAFETY: the handler does only async-signal-safe work — a single
    // atomic store, no allocation, no locks.
    unsafe extern "C" fn on_sigterm(_signum: c_int) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }
    extern "C" {
        // `signal(2)` from the platform C library, declared here to
        // avoid a libc crate dependency for one call.
        // SAFETY: the signature matches the POSIX prototype
        // `void (*signal(int, void (*)(int)))(int)` up to the opaque
        // return value, which is never dereferenced.
        fn signal(signum: c_int, handler: unsafe extern "C" fn(c_int)) -> usize;
    }
    // SAFETY: both arguments are valid for the declared prototype and
    // the handler is async-signal-safe (see above).
    unsafe {
        signal(SIGTERM, on_sigterm);
    }
}

/// The shared state a worker thread sees.
struct Server<'a> {
    metrics: &'a Metrics,
    cache: &'a Mutex<LruLibraryCache>,
    log: Option<&'a Mutex<BufWriter<File>>>,
    log_seq: &'a AtomicU64,
}

impl Server<'_> {
    fn worker_loop(&self, rx: &Mutex<Receiver<TcpStream>>) {
        loop {
            let next = rx
                .lock()
                .expect("connection queue lock")
                .recv_timeout(POLL_INTERVAL);
            match next {
                Ok(stream) => self.handle_connection(stream),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return,
            }
        }
    }

    /// Serves one connection until the peer hangs up, a fatal frame
    /// error occurs, or the drain flag is set between frames. A peer
    /// that stalls mid-payload past the drain's patience is counted in
    /// `write_timeouts` rather than dropped silently.
    fn handle_connection(&self, mut stream: TcpStream) {
        loop {
            match read_frame_draining(&mut stream, &SHUTDOWN, Some(&self.metrics.write_timeouts)) {
                Ok(Some(payload)) => {
                    let (response, last) = self.process_frame(&payload);
                    if write_frame(&mut stream, &response).is_err() || last {
                        return;
                    }
                }
                Ok(None) | Err(_) => return,
            }
        }
    }

    /// Answers one frame. Returns the response and whether this
    /// connection should close afterwards (shutdown acknowledged).
    fn process_frame(&self, payload: &str) -> (String, bool) {
        let error = |message: String| {
            self.metrics.errors.fetch_add(1, Ordering::Relaxed);
            (
                format!(
                    "{{\"schema\":\"{SERVE_SCHEMA}\",\"ok\":false,\"error\":{}}}",
                    sunmap_sim::sweep::json_string(&message)
                ),
                false,
            )
        };
        let frame = match Json::parse(payload) {
            Ok(frame) => frame,
            Err(e) => return error(format!("bad frame: {e}")),
        };
        match frame.get("op").and_then(Json::as_str) {
            Some("ping") => {
                self.metrics.ping_requests.fetch_add(1, Ordering::Relaxed);
                (
                    format!("{{\"schema\":\"{SERVE_SCHEMA}\",\"ok\":true,\"op\":\"ping\"}}"),
                    false,
                )
            }
            Some("stats") => {
                self.metrics.stats_requests.fetch_add(1, Ordering::Relaxed);
                (
                    format!(
                        "{{\"schema\":\"{SERVE_SCHEMA}\",\"ok\":true,\"op\":\"stats\",\
                         \"metrics\":{}}}",
                        self.metrics.to_json()
                    ),
                    false,
                )
            }
            Some("shutdown") => {
                SHUTDOWN.store(true, Ordering::SeqCst);
                (
                    format!(
                        "{{\"schema\":\"{SERVE_SCHEMA}\",\"ok\":true,\"op\":\"shutdown\",\
                         \"draining\":true}}"
                    ),
                    true,
                )
            }
            Some("explore") => {
                let request = match frame.get("request") {
                    Some(value) => match ExploreRequest::from_json_value(value) {
                        Ok(request) => request,
                        Err(e) => return error(format!("bad request: {e}")),
                    },
                    None => return error("explore frame needs a 'request'".to_string()),
                };
                match self.run_explore(&request) {
                    Ok((report, cache_hit)) => (
                        format!(
                            "{{\"schema\":\"{SERVE_SCHEMA}\",\"ok\":true,\"op\":\"explore\",\
                             \"cache_hit\":{cache_hit},\"report\":{report}}}"
                        ),
                        false,
                    ),
                    Err(e) => error(e),
                }
            }
            Some(other) => error(format!(
                "unknown op '{other}' (valid: explore, stats, ping, shutdown)"
            )),
            None => error("frame needs a string 'op'".to_string()),
        }
    }

    /// The daemon's explore path: the same checkout/[`execute`]/checkin
    /// sequence as [`RequestRunner::run`], against the shared cache —
    /// the lock is held only for the lookup, never for the mapping.
    fn run_explore(&self, req: &ExploreRequest) -> Result<(String, bool), String> {
        let started = Instant::now();
        req.validate()?;
        let app = req.app.resolve()?;
        let spec = req.app.to_string();
        let (mut library, cache_hit, build_nanos) = self
            .cache
            .lock()
            .expect("cache lock")
            .checkout(app.core_count(), req.capacity, req.table_prep);
        let (body, stats) = execute(&spec, &app, req, &mut library.topos);
        self.cache.lock().expect("cache lock").checkin(library);
        let line = format!("{{\"schema\":\"{REPORT_SCHEMA}\",{body}}}");

        let m = self.metrics;
        m.explore_requests.fetch_add(1, Ordering::Relaxed);
        m.evaluations
            .fetch_add(stats.evaluated as u64, Ordering::Relaxed);
        if cache_hit {
            m.cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            m.cache_misses.fetch_add(1, Ordering::Relaxed);
            m.route_table_build.record_nanos(build_nanos);
        }
        m.swap_search.record_nanos(stats.mapping_nanos);
        // Process-level attribution: under concurrent requests the
        // drained floorplan time includes other workers' share.
        let floorplan_nanos = timing::take_floorplan_nanos();
        if floorplan_nanos > 0 {
            m.floorplan.record_nanos(floorplan_nanos);
        }
        if stats.probe_nanos > 0 {
            m.probe.record_nanos(stats.probe_nanos);
        }
        m.request
            .record_nanos(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));

        if let Some(log) = self.log {
            let seq = self.log_seq.fetch_add(1, Ordering::Relaxed);
            let entry = format!(
                "{{\"schema\":\"{SERVE_LOG_SCHEMA}\",\"seq\":{seq},\"request\":{},\
                 \"report\":{line}}}",
                req.to_json()
            );
            let mut log = log.lock().expect("log lock");
            // Flush per line: the log must survive an abrupt kill.
            let _ = writeln!(log, "{entry}").and_then(|()| log.flush());
        }
        Ok((line, cache_hit))
    }
}

/// Re-runs every request in a replay log through the one-shot
/// [`RequestRunner`] and checks each reproduces its logged report
/// byte-for-byte.
#[derive(Debug, PartialEq, Eq)]
pub struct ReplaySummary {
    /// Log entries replayed and verified.
    pub replayed: usize,
}

/// Verifies a request-replay log written by [`serve`].
///
/// # Errors
///
/// Unreadable or malformed logs, and — the interesting case — any
/// entry whose replayed report differs from the logged bytes; the
/// message names the line and its `seq`.
pub fn verify_replay(path: &Path, cache_entries: usize) -> Result<ReplaySummary, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read log {}: {e}", path.display()))?;
    let mut runner = RequestRunner::new(cache_entries);
    let mut replayed = 0usize;
    for (index, line) in text.lines().enumerate() {
        let lineno = index + 1;
        if line.trim().is_empty() {
            continue;
        }
        let entry = Json::parse(line).map_err(|e| format!("log line {lineno} is not JSON: {e}"))?;
        match entry.get("schema").and_then(Json::as_str) {
            Some(SERVE_LOG_SCHEMA) => {}
            other => {
                return Err(format!(
                    "log line {lineno} has schema {other:?}, expected {SERVE_LOG_SCHEMA}"
                ));
            }
        }
        let seq = entry
            .get("seq")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("log line {lineno} has no seq"))?;
        let request = entry
            .get("request")
            .ok_or_else(|| format!("log line {lineno} has no request"))
            .and_then(|v| {
                ExploreRequest::from_json_value(v)
                    .map_err(|e| format!("log line {lineno}: bad request: {e}"))
            })?;
        let logged =
            report_slice(line).ok_or_else(|| format!("log line {lineno} has no report object"))?;
        let outcome = runner
            .run(&request)
            .map_err(|e| format!("log line {lineno}: replay failed: {e}"))?;
        if outcome.line != logged {
            return Err(format!(
                "replay mismatch at log line {lineno} (seq {seq}): replayed report \
                 differs from logged bytes"
            ));
        }
        replayed += 1;
    }
    Ok(ReplaySummary { replayed })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    fn request_frame(request_json: &str) -> String {
        format!("{{\"op\":\"explore\",\"request\":{request_json}}}")
    }

    fn roundtrip(stream: &mut TcpStream, frame: &str) -> String {
        write_frame(stream, frame).expect("write frame");
        read_frame(stream).expect("read frame").expect("a response")
    }

    #[test]
    fn report_slice_extracts_the_trailing_object() {
        let envelope = "{\"schema\":\"sunmap-serve/1\",\"ok\":true,\"op\":\"explore\",\
                        \"cache_hit\":true,\"report\":{\"schema\":\"sunmap-report/1\",\"x\":1}}";
        assert_eq!(
            report_slice(envelope),
            Some("{\"schema\":\"sunmap-report/1\",\"x\":1}")
        );
        assert_eq!(report_slice("{\"ok\":false,\"error\":\"nope\"}"), None);
    }

    /// A peer that sends a length prefix but stalls mid-payload during
    /// a drain is abandoned after the stall cap — and the drop surfaces
    /// in the `write_timeouts` counter instead of vanishing silently.
    #[test]
    fn stalled_half_sent_payload_bumps_write_timeouts() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut peer = TcpStream::connect(addr).expect("connect");
        let (mut stream, _) = listener.accept().expect("accept");
        // A short timeout keeps the 50-stall cap fast in a unit test.
        stream
            .set_read_timeout(Some(Duration::from_millis(2)))
            .expect("read timeout");

        // Length prefix promises 8 bytes; only 3 ever arrive.
        peer.write_all(&8u32.to_be_bytes()).unwrap();
        peer.write_all(b"abc").unwrap();
        peer.flush().unwrap();

        let drain = AtomicBool::new(true);
        let metrics = Metrics::new();
        let got = read_frame_draining(&mut stream, &drain, Some(&metrics.write_timeouts))
            .expect("stall is not an IO error");
        assert_eq!(got, None, "the stalled frame is abandoned");
        assert_eq!(metrics.write_timeouts.load(Ordering::Relaxed), 1);
        assert!(
            metrics.to_json().contains("\"write_timeouts\":1"),
            "{}",
            metrics.to_json()
        );
    }

    /// End-to-end in-process: ping, two explores (second is warm),
    /// stats, shutdown — and the log replays byte-identically.
    #[test]
    fn daemon_serves_warm_reports_and_a_replayable_log() {
        let log_path =
            std::env::temp_dir().join(format!("sunmap-serve-unit-{}.jsonl", std::process::id()));
        let config = ServeConfig {
            log_path: Some(log_path.clone()),
            ..ServeConfig::default()
        };
        let (addr_tx, addr_rx) = channel();
        // thread::scope (not bare spawn): the daemon thread is joined
        // before the scope ends and its panics propagate to the test.
        let summary = thread::scope(|scope| {
            let server =
                scope.spawn(|| serve(&config, |addr| addr_tx.send(addr).expect("report addr")));
            let addr = addr_rx.recv().expect("server comes up");
            let mut stream = TcpStream::connect(addr).expect("connect");

            let pong = roundtrip(&mut stream, "{\"op\":\"ping\"}");
            assert!(pong.contains("\"op\":\"ping\""), "{pong}");

            let req = ExploreRequest::new("dsp".parse().unwrap());
            let first = roundtrip(&mut stream, &request_frame(&req.to_json()));
            assert!(first.contains("\"cache_hit\":false"), "{first}");
            let second = roundtrip(&mut stream, &request_frame(&req.to_json()));
            assert!(second.contains("\"cache_hit\":true"), "{second}");
            assert_eq!(report_slice(&first), report_slice(&second));

            // The daemon's bytes match the one-shot runner's bytes.
            let oneshot = RequestRunner::new(1).run(&req).unwrap();
            assert_eq!(report_slice(&first), Some(oneshot.line.as_str()));

            // Bad frames are errors, not disconnects.
            let err = roundtrip(&mut stream, "{\"op\":\"warp\"}");
            assert!(err.contains("\"ok\":false"), "{err}");

            let stats = roundtrip(&mut stream, "{\"op\":\"stats\"}");
            assert!(
                stats.contains("\"schema\":\"sunmap-serve-metrics/1\""),
                "{stats}"
            );
            assert!(stats.contains("\"hits\":1"), "{stats}");

            let bye = roundtrip(&mut stream, "{\"op\":\"shutdown\"}");
            assert!(bye.contains("\"draining\":true"), "{bye}");
            server.join().expect("no panic").expect("clean shutdown")
        });
        assert_eq!(summary.explore_requests, 2);
        assert!(
            summary.metrics_json.contains("\"explore\":2"),
            "{}",
            summary.metrics_json
        );

        let replay = verify_replay(&log_path, 2).expect("log replays");
        assert_eq!(replay, ReplaySummary { replayed: 2 });

        // Tampering with a logged entry must fail the replay. The
        // first "capacity" on each line is the request's: bump it and
        // the replayed report no longer matches the logged bytes.
        let tampered = std::fs::read_to_string(&log_path).unwrap().replacen(
            "\"capacity\":500",
            "\"capacity\":501",
            1,
        );
        std::fs::write(&log_path, tampered).unwrap();
        assert!(
            verify_replay(&log_path, 2).is_err(),
            "tampered log must not verify"
        );
        let _ = std::fs::remove_file(&log_path);
    }
}
