//! The single home of every wire-schema identifier this workspace
//! emits or consumes.
//!
//! Each producer interpolates these consts into its output and each
//! consumer matches against them, so a schema bump is one edit and the
//! two sides cannot drift. The `schema-literal` lint rule enforces
//! this: a `sunmap-*/N` string duplicated as a literal anywhere in
//! library code (outside a `const` declaration) fails CI. Integration
//! tests deliberately keep raw literals — they pin the bytes on the
//! wire, so a silent const edit still trips them.
//!
//! (`sunmap-sweep/1` lives with its emitter in
//! [`sunmap_sim::sweep::SWEEP_SCHEMA`], the one schema owned by a
//! crate below this one.)

/// One-line explore report: `{"schema":"sunmap-report/1",...}` —
/// printed by `explore --json`, embedded by serve envelopes and
/// replay-log entries.
pub const REPORT_SCHEMA: &str = "sunmap-report/1";

/// One JSONL line per batch job in `batch.jsonl`.
pub const BATCH_SCHEMA: &str = "sunmap-batch/1";

/// Serve daemon frame envelopes (both directions).
pub const SERVE_SCHEMA: &str = "sunmap-serve/1";

/// Append-only serve request-replay log lines.
pub const SERVE_LOG_SCHEMA: &str = "sunmap-serve-log/1";

/// Serve metrics snapshots (`stats` frames and the shutdown dump).
pub const SERVE_METRICS_SCHEMA: &str = "sunmap-serve-metrics/1";

/// Distributed batch coordinator/worker frames.
pub const SHARD_SCHEMA: &str = "sunmap-shard/1";

/// Coordinator counter snapshots at the end of a distributed run.
pub const SHARD_METRICS_SCHEMA: &str = "sunmap-shard-metrics/1";

/// `simulate.json` written by the `simulate` CLI command.
pub const SIMULATE_SCHEMA: &str = "sunmap-simulate/1";

#[cfg(test)]
mod tests {
    use super::*;

    /// Every schema identifier parses as `sunmap-<kebab-word>/<version>`
    /// and is unique — the invariants the lint rule and the wire both
    /// rely on.
    #[test]
    fn schemas_are_well_formed_and_distinct() {
        let all = [
            REPORT_SCHEMA,
            BATCH_SCHEMA,
            SERVE_SCHEMA,
            SERVE_LOG_SCHEMA,
            SERVE_METRICS_SCHEMA,
            SHARD_SCHEMA,
            SHARD_METRICS_SCHEMA,
            SIMULATE_SCHEMA,
        ];
        for schema in all {
            let (name, version) = schema.split_once('/').expect("has a version");
            assert!(name.starts_with("sunmap-"), "{schema}");
            assert!(
                name.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "{schema}"
            );
            assert!(version.chars().all(|c| c.is_ascii_digit()), "{schema}");
        }
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
