//! The 4-byte big-endian length-prefixed JSON frame codec.
//!
//! Every socket surface of the tool speaks the same wire unit: a
//! 4-byte big-endian payload length followed by that many bytes of
//! UTF-8 JSON. The serve daemon (schema `sunmap-serve/1`, see
//! [`crate::serve`]) and the distributed batch coordinator/worker pair
//! (schema `sunmap-shard/1`, see [`crate::shard`]) both build on this
//! module, so framing bugs can only be fixed in one place.
//!
//! [`write_frame`] / [`read_frame`] are the blocking pair used by
//! clients and tests. [`read_frame_draining`] is the daemon-side
//! variant for timeout-armed sockets: it retries reads that time out
//! and gives up cleanly when a drain flag is raised *between* frames,
//! which is what makes graceful shutdown graceful — a frame whose
//! length prefix has arrived is always read and answered.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Frames above this size are rejected rather than allocated.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// How many consecutive read timeouts a half-sent payload survives
/// once the drain flag is up before the connection is abandoned (see
/// [`read_frame_draining`]).
const STALL_CAP: u32 = 50;

/// Writes one length-prefixed frame (client side and tests; the
/// daemons use it too).
///
/// # Errors
///
/// Propagates socket errors; frames over [`MAX_FRAME_BYTES`] are
/// rejected with [`io::ErrorKind::InvalidInput`].
pub fn write_frame<W: Write>(writer: &mut W, payload: &str) -> io::Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame too large",
        ));
    }
    let len = u32::try_from(payload.len()).expect("bounded above");
    writer.write_all(&len.to_be_bytes())?;
    writer.write_all(payload.as_bytes())?;
    writer.flush()
}

/// Reads one length-prefixed frame from a *blocking* stream. Returns
/// `Ok(None)` on a clean end-of-stream before the length prefix.
///
/// # Errors
///
/// Truncated frames, oversized lengths and non-UTF-8 payloads are
/// [`io::ErrorKind::InvalidData`]; socket errors propagate.
pub fn read_frame<R: Read>(reader: &mut R) -> io::Result<Option<String>> {
    let mut prefix = [0u8; 4];
    match reader.read(&mut prefix) {
        Ok(0) => return Ok(None),
        Ok(n) => reader.read_exact(&mut prefix[n..])?,
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame too large",
        ));
    }
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload)?;
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))
}

/// Like [`read_frame`] but for a daemon's timeout-armed sockets:
/// retries reads that time out, and gives up cleanly (`Ok(None)`) when
/// `drain` is raised while *between* frames — a frame whose length
/// prefix has arrived is always read and answered.
///
/// A half-sent payload may never finish and must not hold the drain
/// hostage forever: after a bounded number of consecutive timeouts
/// with `drain` up, the read is abandoned (`Ok(None)`) and
/// `stalled_writes` — the peer never finished writing — is
/// incremented, so the drop is visible in metrics instead of silent.
///
/// # Errors
///
/// Truncated frames, oversized lengths and non-UTF-8 payloads are
/// [`io::ErrorKind::InvalidData`]; socket errors propagate.
pub fn read_frame_draining(
    stream: &mut TcpStream,
    drain: &AtomicBool,
    stalled_writes: Option<&AtomicU64>,
) -> io::Result<Option<String>> {
    let mut prefix = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match stream.read(&mut prefix[got..]) {
            Ok(0) => {
                return if got == 0 {
                    Ok(None)
                } else {
                    Err(io::ErrorKind::UnexpectedEof.into())
                };
            }
            Ok(n) => got += n,
            Err(e) if is_timeout(&e) => {
                if got == 0 && drain.load(Ordering::SeqCst) {
                    return Ok(None);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame too large",
        ));
    }
    let mut payload = vec![0u8; len];
    let mut got = 0;
    let mut stalled_draining = 0u32;
    while got < len {
        match stream.read(&mut payload[got..]) {
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => {
                got += n;
                stalled_draining = 0;
            }
            Err(e) if is_timeout(&e) => {
                if drain.load(Ordering::SeqCst) {
                    stalled_draining += 1;
                    if stalled_draining > STALL_CAP {
                        if let Some(counter) = stalled_writes {
                            counter.fetch_add(1, Ordering::Relaxed);
                        }
                        return Ok(None);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_through_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"op\":\"ping\"}").unwrap();
        write_frame(&mut buf, "second").unwrap();
        let mut cursor = &buf[..];
        assert_eq!(
            read_frame(&mut cursor).unwrap().as_deref(),
            Some("{\"op\":\"ping\"}")
        );
        assert_eq!(read_frame(&mut cursor).unwrap().as_deref(), Some("second"));
        assert_eq!(read_frame(&mut cursor).unwrap(), None, "clean EOF");
    }

    #[test]
    fn oversized_frames_are_rejected_on_both_sides() {
        let big = "x".repeat(MAX_FRAME_BYTES + 1);
        let mut buf = Vec::new();
        assert_eq!(
            write_frame(&mut buf, &big).unwrap_err().kind(),
            io::ErrorKind::InvalidInput
        );
        // A forged oversized length prefix is rejected before the
        // allocation, not after.
        let forged = (MAX_FRAME_BYTES as u32 + 1).to_be_bytes();
        let mut cursor = &forged[..];
        assert_eq!(
            read_frame(&mut cursor).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn truncated_and_non_utf8_frames_are_invalid_data() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "hello").unwrap();
        let mut cursor = &buf[..buf.len() - 2];
        assert!(read_frame(&mut cursor).is_err(), "truncated payload");
        let mut bad = Vec::new();
        bad.extend_from_slice(&2u32.to_be_bytes());
        bad.extend_from_slice(&[0xff, 0xfe]);
        let mut cursor = &bad[..];
        assert_eq!(
            read_frame(&mut cursor).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }
}
