//! Live counters and latency histograms for the serve daemon.
//!
//! No dependencies, no locks on the hot path: counters are relaxed
//! atomics and each histogram is a fixed array of power-of-two-µs
//! buckets, so recording a sample is a couple of atomic adds. A
//! [`Metrics`] is shared by `Arc` between the daemon's workers; the
//! `stats` frame and the shutdown dump both render the same
//! [`Metrics::to_json`] snapshot (schema `sunmap-serve-metrics/1`).
//!
//! Snapshots are taken field by field without a global lock, so a
//! snapshot racing live traffic may be off by the requests in flight —
//! monitoring semantics, deliberately cheaper than exactness.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::schema::{SERVE_METRICS_SCHEMA, SHARD_METRICS_SCHEMA};
use sunmap_sim::sweep::json_number;

/// Number of histogram buckets: bucket `i` counts samples in
/// `[2^i, 2^(i+1))` µs (bucket 0 includes sub-µs samples), so 32
/// buckets span sub-microsecond to ~72 minutes.
const BUCKETS: usize = 32;

/// A fixed-bucket latency histogram over microseconds.
///
/// Buckets are powers of two, so `record` is a leading-zeros
/// instruction plus two atomic adds — cheap enough for per-request and
/// per-phase use.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    min_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            min_us: AtomicU64::new(u64::MAX),
            max_us: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one duration given in nanoseconds.
    pub fn record_nanos(&self, nanos: u64) {
        let us = nanos / 1_000;
        let bucket = (63 - u64::leading_zeros(us.max(1)) as usize).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.min_us.fetch_min(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The upper bound (µs) of the bucket holding quantile `q` of the
    /// recorded samples — an over-estimate by at most 2×, which is the
    /// resolution monitoring needs.
    fn quantile_us(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((count as f64) * q).ceil() as u64;
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                return 1u64 << (i + 1);
            }
        }
        self.max_us.load(Ordering::Relaxed)
    }

    /// JSON object snapshot: count, min/mean/max and approximate
    /// p50/p90/p99, all in microseconds.
    pub fn to_json(&self) -> String {
        let count = self.count();
        let (min, mean) = if count == 0 {
            (0, 0.0)
        } else {
            (
                self.min_us.load(Ordering::Relaxed),
                self.sum_us.load(Ordering::Relaxed) as f64 / count as f64,
            )
        };
        format!(
            "{{\"count\":{count},\"min_us\":{min},\"mean_us\":{},\"max_us\":{},\
             \"p50_us\":{},\"p90_us\":{},\"p99_us\":{}}}",
            json_number(mean),
            self.max_us.load(Ordering::Relaxed),
            self.quantile_us(0.50),
            self.quantile_us(0.90),
            self.quantile_us(0.99),
        )
    }
}

/// The daemon's counters and per-phase histograms.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    /// `explore` frames answered successfully.
    pub explore_requests: AtomicU64,
    /// `stats` frames answered.
    pub stats_requests: AtomicU64,
    /// `ping` frames answered.
    pub ping_requests: AtomicU64,
    /// Frames rejected with an error response.
    pub errors: AtomicU64,
    /// Connections dropped because the peer stalled mid-payload past
    /// the drain's patience (see `frame::read_frame_draining`).
    pub write_timeouts: AtomicU64,
    /// Candidate-library (route table) cache hits.
    pub cache_hits: AtomicU64,
    /// Candidate-library cache misses (cold builds).
    pub cache_misses: AtomicU64,
    /// Mapping candidates evaluated, across all requests.
    pub evaluations: AtomicU64,
    /// Route-table construction latency (cache misses only).
    pub route_table_build: Histogram,
    /// Mapping/swap-search latency per request.
    pub swap_search: Histogram,
    /// Floorplanning latency, as drained from
    /// `sunmap_mapping::timing` after each request (combined across
    /// concurrent requests — process-level attribution).
    pub floorplan: Histogram,
    /// Simulation-probe latency (probe requests only).
    pub probe: Histogram,
    /// End-to-end explore latency (receipt to response rendered).
    pub request: Histogram,
}

impl Metrics {
    /// Fresh metrics; the uptime clock starts now.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Metrics {
        Metrics {
            started: Instant::now(),
            explore_requests: AtomicU64::new(0),
            stats_requests: AtomicU64::new(0),
            ping_requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            write_timeouts: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            evaluations: AtomicU64::new(0),
            route_table_build: Histogram::default(),
            swap_search: Histogram::default(),
            floorplan: Histogram::default(),
            probe: Histogram::default(),
            request: Histogram::default(),
        }
    }

    /// One-line JSON snapshot (schema `sunmap-serve-metrics/1`):
    /// request/cache/evaluation counters, the evaluation rate over the
    /// process uptime, and one histogram object per phase.
    pub fn to_json(&self) -> String {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let uptime = self.started.elapsed().as_secs_f64();
        let evals = get(&self.evaluations);
        let evals_per_sec = if uptime > 0.0 {
            evals as f64 / uptime
        } else {
            0.0
        };
        format!(
            "{{\"schema\":\"{SERVE_METRICS_SCHEMA}\",\"uptime_secs\":{},\
             \"requests\":{{\"explore\":{},\"stats\":{},\"ping\":{},\"errors\":{},\
             \"write_timeouts\":{}}},\
             \"cache\":{{\"hits\":{},\"misses\":{}}},\
             \"evaluations\":{evals},\"evals_per_sec\":{},\
             \"latency_us\":{{\"route_table_build\":{},\"swap_search\":{},\
             \"floorplan\":{},\"probe\":{},\"request\":{}}}}}",
            json_number(uptime),
            get(&self.explore_requests),
            get(&self.stats_requests),
            get(&self.ping_requests),
            get(&self.errors),
            get(&self.write_timeouts),
            get(&self.cache_hits),
            get(&self.cache_misses),
            json_number(evals_per_sec),
            self.route_table_build.to_json(),
            self.swap_search.to_json(),
            self.floorplan.to_json(),
            self.probe.to_json(),
            self.request.to_json(),
        )
    }
}

/// Robustness counters kept by the shard coordinator's state machine.
///
/// Plain integers, not atomics: the machine is single-threaded and
/// IO-free (see [`crate::shard`]), so its counters are part of the
/// deterministic state the simtest replays — the same seed produces
/// the same counter values, not just the same bytes.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ShardCounters {
    /// Jobs whose result line was accepted (first delivery only).
    pub jobs_completed: u64,
    /// Leases granted, including re-issues.
    pub leases_granted: u64,
    /// Leases that timed out and were retried with backoff.
    pub lease_retries: u64,
    /// Ranges requeued because their worker died or disconnected.
    pub ranges_requeued: u64,
    /// Workers declared dead (disconnect or missed heartbeats).
    pub worker_deaths: u64,
    /// Duplicate results received, byte-compared and deduped.
    pub duplicate_results: u64,
}

impl ShardCounters {
    /// One-line JSON snapshot (schema `sunmap-shard-metrics/1`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"schema\":\"{SHARD_METRICS_SCHEMA}\",\"jobs_completed\":{},\
             \"leases_granted\":{},\"lease_retries\":{},\"ranges_requeued\":{},\
             \"worker_deaths\":{},\"duplicate_results\":{}}}",
            self.jobs_completed,
            self.leases_granted,
            self.lease_retries,
            self.ranges_requeued,
            self.worker_deaths,
            self.duplicate_results,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn histogram_buckets_cover_the_range() {
        let h = Histogram::default();
        assert_eq!(h.to_json(), h.to_json(), "empty snapshot is stable");
        h.record_nanos(500); // sub-µs lands in bucket 0
        h.record_nanos(3_000); // 3 µs
        h.record_nanos(1_000_000); // 1 ms
        h.record_nanos(u64::MAX); // saturates the last bucket
        assert_eq!(h.count(), 4);
        let snap = Json::parse(&h.to_json()).unwrap();
        assert_eq!(snap.get("count").and_then(Json::as_f64), Some(4.0));
        assert_eq!(snap.get("min_us").and_then(Json::as_f64), Some(0.0));
        assert!(snap.get("p50_us").and_then(Json::as_f64).unwrap() >= 1.0);
        assert!(
            snap.get("p99_us").and_then(Json::as_f64).unwrap()
                >= snap.get("p50_us").and_then(Json::as_f64).unwrap()
        );
    }

    #[test]
    fn quantiles_track_the_distribution() {
        let h = Histogram::default();
        for _ in 0..90 {
            h.record_nanos(10_000); // 10 µs -> bucket [8,16)
        }
        for _ in 0..10 {
            h.record_nanos(10_000_000); // 10 ms
        }
        assert_eq!(h.quantile_us(0.5), 16, "p50 in the 10 µs bucket");
        assert!(h.quantile_us(0.99) >= 8_192, "p99 in the 10 ms bucket");
    }

    #[test]
    fn shard_counters_snapshot_is_valid_json() {
        let counters = ShardCounters {
            jobs_completed: 12,
            leases_granted: 7,
            lease_retries: 2,
            ranges_requeued: 3,
            worker_deaths: 1,
            duplicate_results: 4,
        };
        let snap = Json::parse(&counters.to_json()).unwrap();
        assert_eq!(
            snap.get("schema").and_then(Json::as_str),
            Some("sunmap-shard-metrics/1")
        );
        assert_eq!(
            snap.get("jobs_completed").and_then(Json::as_f64),
            Some(12.0)
        );
        assert_eq!(snap.get("worker_deaths").and_then(Json::as_f64), Some(1.0));
        assert_eq!(
            snap.get("duplicate_results").and_then(Json::as_f64),
            Some(4.0)
        );
    }

    #[test]
    fn metrics_snapshot_is_valid_json_with_all_sections() {
        let m = Metrics::new();
        m.explore_requests.fetch_add(2, Ordering::Relaxed);
        m.cache_hits.fetch_add(1, Ordering::Relaxed);
        m.evaluations.fetch_add(1234, Ordering::Relaxed);
        m.request.record_nanos(5_000_000);
        let snap = Json::parse(&m.to_json()).unwrap();
        assert_eq!(
            snap.get("schema").and_then(Json::as_str),
            Some("sunmap-serve-metrics/1")
        );
        assert_eq!(
            snap.get("requests")
                .and_then(|r| r.get("explore"))
                .and_then(Json::as_f64),
            Some(2.0)
        );
        assert_eq!(
            snap.get("cache")
                .and_then(|c| c.get("hits"))
                .and_then(Json::as_f64),
            Some(1.0)
        );
        assert_eq!(snap.get("evaluations").and_then(Json::as_f64), Some(1234.0));
        let latency = snap.get("latency_us").unwrap();
        for phase in [
            "route_table_build",
            "swap_search",
            "floorplan",
            "probe",
            "request",
        ] {
            assert!(latency.get(phase).is_some(), "{phase} section missing");
        }
        assert_eq!(
            latency
                .get("request")
                .and_then(|h| h.get("count"))
                .and_then(Json::as_f64),
            Some(1.0)
        );
    }
}
