//! The shard chaos simtest.
//!
//! Every scenario here asserts the same invariant: no matter which
//! faults the virtual transport injects, the coordinator assembles
//! exactly the bytes a single process would produce, in order, and the
//! run terminates. Ten pinned seeds keep CI deterministic; set
//! `SHARD_SIMTEST_SEEDS=200` (any N) to sweep fresh seeds locally.

use sunmap::shard_sim::{oracle_lines, run_shard_sim, FaultPlan, SimSpec};

/// The pinned CI corpus — full chaos (all four fault classes at once).
const PINNED_SEEDS: [u64; 10] = [
    0xDAC0_2004,
    1,
    7,
    42,
    1337,
    0xBEEF,
    0x5EED_0001,
    0x5EED_0002,
    2_718_281_828,
    987_654_321,
];

fn assert_matches_oracle(spec: &SimSpec) {
    let outcome = run_shard_sim(spec).unwrap_or_else(|e| panic!("seed {}: {e}", spec.seed));
    assert_eq!(
        outcome.lines,
        oracle_lines(spec.jobs),
        "seed {}: assembled bytes must equal the single-process oracle",
        spec.seed
    );
    assert_eq!(outcome.counters.jobs_completed as usize, spec.jobs);
}

#[test]
fn pinned_chaos_seeds_reproduce_the_oracle() {
    for &seed in &PINNED_SEEDS {
        assert_matches_oracle(&SimSpec::chaos(seed));
    }
}

#[test]
fn extra_seeds_from_the_environment_also_hold() {
    // Defaults to a handful so the knob's plumbing is always exercised;
    // SHARD_SIMTEST_SEEDS=N widens the sweep.
    let extra: u64 = std::env::var("SHARD_SIMTEST_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    for seed in 0..extra {
        // Offset past the pinned corpus so the sweep adds coverage.
        assert_matches_oracle(&SimSpec::chaos(0x1000_0000 + seed));
    }
}

#[test]
fn reorder_alone_cannot_scramble_the_output() {
    for seed in [3, 11, 19] {
        let mut spec = SimSpec::chaos(seed);
        spec.faults = FaultPlan {
            reorder: 0.6,
            ..FaultPlan::default()
        };
        assert_matches_oracle(&spec);
    }
}

#[test]
fn duplicate_frames_are_deduplicated_not_doubled() {
    for seed in [5, 23, 71] {
        let mut spec = SimSpec::chaos(seed);
        spec.faults = FaultPlan {
            duplicate: 0.4,
            ..FaultPlan::default()
        };
        assert_matches_oracle(&spec);
    }
}

#[test]
fn dropped_frames_are_retried_to_completion() {
    for seed in [2, 13, 29] {
        let mut spec = SimSpec::chaos(seed);
        spec.faults = FaultPlan {
            drop: 0.15,
            ..FaultPlan::default()
        };
        assert_matches_oracle(&spec);
    }
}

#[test]
fn killed_workers_lose_no_jobs() {
    let mut saw_a_kill = false;
    for seed in [4, 17, 31, 53] {
        let mut spec = SimSpec::chaos(seed);
        spec.faults = FaultPlan {
            kill: 0.01,
            ..FaultPlan::default()
        };
        let outcome = run_shard_sim(&spec).unwrap_or_else(|e| panic!("seed {}: {e}", spec.seed));
        assert_eq!(outcome.lines, oracle_lines(spec.jobs));
        saw_a_kill |= outcome.kills > 0;
    }
    assert!(saw_a_kill, "the kill fault class must actually fire");
}
