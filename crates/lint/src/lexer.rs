//! A hand-rolled Rust lexer, just deep enough for lint rules.
//!
//! The rules in [`crate::rules`] match on identifier and string-literal
//! tokens, so the one job this lexer must do *correctly* is decide what
//! is code and what is not: line comments, (nested) block comments,
//! string literals with escapes, raw strings with arbitrary `#` fences,
//! byte strings, char literals, and the `'a`-lifetime-versus-`'a'`-char
//! ambiguity. Everything it cannot classify falls through as a
//! single-character [`TokenKind::Punct`] — never an error: lexing must
//! total so the linter can be pointed at arbitrary (even syntactically
//! broken) input without panicking.
//!
//! Comments are *kept* as tokens rather than skipped, because two
//! consumers need them: the `// lint:allow(rule): reason` suppression
//! scanner and the `naked-unsafe` rule's `// SAFETY:` search.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (the lexer does not distinguish).
    Ident,
    /// `"…"` or `b"…"`, escapes handled.
    Str,
    /// `r"…"`, `r#"…"#`, `br##"…"##`, any fence depth.
    RawStr,
    /// `'x'`, `'\n'`, `b'x'` — a character or byte literal.
    Char,
    /// `'a`, `'static`, `'_` — a lifetime (or loop label).
    Lifetime,
    /// A numeric literal (loosely lexed; suffixes included).
    Number,
    /// `// …` to end of line (doc comments included).
    LineComment,
    /// `/* … */`, nesting respected (doc comments included).
    BlockComment,
    /// Any other single character of punctuation.
    Punct,
}

/// One lexed token. `start..end` index into the source string; `line`
/// and `col` are 1-based and refer to `start`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub start: usize,
    pub end: usize,
    pub line: u32,
    pub col: u32,
}

impl Token {
    /// The token's source text.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }
}

/// Lexes `src` completely. Total: never panics, never drops input —
/// the concatenation of all token texts is exactly `src` minus
/// whitespace.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer::new(src).run()
}

struct Lexer<'s> {
    src: &'s str,
    /// Byte offset of the next unconsumed char.
    pos: usize,
    line: u32,
    /// Byte offset where the current line starts.
    line_start: usize,
    tokens: Vec<Token>,
}

impl<'s> Lexer<'s> {
    fn new(src: &'s str) -> Self {
        Lexer {
            src,
            pos: 0,
            line: 1,
            line_start: 0,
            tokens: Vec::new(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek_at(&self, n: usize) -> Option<char> {
        self.src[self.pos..].chars().nth(n)
    }

    /// Consumes one char, maintaining the line counter.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.line_start = self.pos;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: u32, col: u32) {
        self.tokens.push(Token {
            kind,
            start,
            end: self.pos,
            line,
            col,
        });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek() {
            let start = self.pos;
            let line = self.line;
            let col = (start - self.line_start) as u32 + 1;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek_at(1) == Some('/') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                    self.push(TokenKind::LineComment, start, line, col);
                }
                '/' if self.peek_at(1) == Some('*') => {
                    self.block_comment();
                    self.push(TokenKind::BlockComment, start, line, col);
                }
                '"' => {
                    self.string();
                    self.push(TokenKind::Str, start, line, col);
                }
                '\'' => {
                    let kind = self.char_or_lifetime();
                    self.push(kind, start, line, col);
                }
                'r' if matches!(self.peek_at(1), Some('"' | '#')) => {
                    // `r"…"`, `r#"…"#`, or a raw identifier `r#ident`.
                    let kind = self.raw_string_or_ident(1);
                    self.push(kind, start, line, col);
                }
                'b' if self.peek_at(1) == Some('"') => {
                    self.bump(); // b
                    self.string();
                    self.push(TokenKind::Str, start, line, col);
                }
                'b' if self.peek_at(1) == Some('\'') => {
                    self.bump(); // b
                    self.bump(); // '
                    self.char_body();
                    self.push(TokenKind::Char, start, line, col);
                }
                'b' if self.peek_at(1) == Some('r')
                    && matches!(self.peek_at(2), Some('"' | '#')) =>
                {
                    self.bump(); // b
                    let kind = self.raw_string_or_ident(1);
                    self.push(kind, start, line, col);
                }
                c if c.is_alphabetic() || c == '_' => {
                    self.ident_tail();
                    self.push(TokenKind::Ident, start, line, col);
                }
                c if c.is_ascii_digit() => {
                    // Loose: consume digits, `_`, type suffixes, a
                    // radix prefix, exponent signs, and a fractional
                    // point — but never eat a `..` range operator.
                    while let Some(c) = self.peek() {
                        let fraction_dot = c == '.'
                            && self.peek_at(1) != Some('.')
                            && self.peek_at(1).is_none_or(|c| !c.is_alphabetic());
                        if c.is_ascii_alphanumeric() || c == '_' || fraction_dot {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.push(TokenKind::Number, start, line, col);
                }
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct, start, line, col);
                }
            }
        }
        self.tokens
    }

    /// Consumes a `/* … */` comment with nesting; the opening `/*` is
    /// still unconsumed. Unterminated comments run to end of input.
    fn block_comment(&mut self) {
        self.bump(); // /
        self.bump(); // *
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(), self.peek_at(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    /// Consumes a `"…"` body starting at the opening quote; backslash
    /// escapes any following char. Unterminated strings run to EOF.
    fn string(&mut self) {
        self.bump(); // opening "
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
    }

    /// After `r` (already at `pos+offset_consumed`), lexes either a raw
    /// string `r#*"…"#*` or a raw identifier `r#ident`. `consume_r`
    /// chars (the `r`, and for `br` the caller consumed `b` itself)
    /// are consumed here first.
    fn raw_string_or_ident(&mut self, consume_r: usize) -> TokenKind {
        for _ in 0..consume_r {
            self.bump();
        }
        let mut fence = 0usize;
        while self.peek() == Some('#') {
            // Lookahead: `r#ident` (raw identifier) has an ident char
            // where a raw string has `#` or `"`.
            if fence == 0
                && self
                    .peek_at(1)
                    .is_some_and(|c| c.is_alphabetic() || c == '_')
            {
                self.bump(); // #
                self.ident_tail();
                return TokenKind::Ident;
            }
            self.bump();
            fence += 1;
        }
        if self.peek() != Some('"') {
            // `r#` followed by nothing lexable — treat as punct-ish
            // ident fragment; totality over precision.
            return TokenKind::Ident;
        }
        self.bump(); // opening "
        'scan: while let Some(c) = self.bump() {
            if c == '"' {
                // A close needs `fence` hashes; fewer means the quote
                // was content and the scan continues.
                let mut matched = 0usize;
                while matched < fence {
                    if self.peek() == Some('#') {
                        self.bump();
                        matched += 1;
                    } else {
                        continue 'scan;
                    }
                }
                break;
            }
        }
        TokenKind::RawStr
    }

    /// At an opening `'`: decide lifetime vs char literal and consume.
    fn char_or_lifetime(&mut self) -> TokenKind {
        self.bump(); // '
        let first = self.peek();
        let second = self.peek_at(1);
        let is_lifetime = match first {
            Some(c) if c.is_alphabetic() || c == '_' => second != Some('\''),
            _ => false,
        };
        if is_lifetime {
            self.ident_tail();
            TokenKind::Lifetime
        } else {
            self.char_body();
            TokenKind::Char
        }
    }

    /// Consumes a char-literal body up to and including the closing
    /// `'`; the opening `'` is already consumed. Escapes respected;
    /// an unterminated literal stops at end of line (chars cannot span
    /// lines, and running on would swallow real code).
    fn char_body(&mut self) {
        while let Some(c) = self.peek() {
            match c {
                '\\' => {
                    self.bump();
                    self.bump();
                }
                '\'' => {
                    self.bump();
                    break;
                }
                '\n' => break,
                _ => {
                    self.bump();
                }
            }
        }
    }

    /// Consumes the tail of an identifier (first char may or may not be
    /// consumed yet — this just eats ident chars greedily).
    fn ident_tail(&mut self) {
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' {
                self.bump();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src)))
            .collect()
    }

    #[test]
    fn comments_strings_and_code_are_separated() {
        let src = "let x = \"// not a comment\"; // real\n/* block /* nested */ */ y";
        let toks = kinds(src);
        assert!(toks.contains(&(TokenKind::Str, "\"// not a comment\"")));
        assert!(toks.contains(&(TokenKind::LineComment, "// real")));
        assert!(toks.contains(&(TokenKind::BlockComment, "/* block /* nested */ */")));
        assert!(toks.contains(&(TokenKind::Ident, "y")));
    }

    #[test]
    fn raw_strings_swallow_fences_and_quotes() {
        let src = r####"let s = r#"inner " quote"#; let t = r"plain";"####;
        let toks = kinds(src);
        assert!(toks.contains(&(TokenKind::RawStr, r###"r#"inner " quote"#"###)));
        assert!(toks.contains(&(TokenKind::RawStr, r#"r"plain""#)));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; let u = '_'; }";
        let toks = kinds(src);
        assert!(toks.contains(&(TokenKind::Lifetime, "'a")));
        assert!(toks.contains(&(TokenKind::Char, "'x'")));
        assert!(toks.contains(&(TokenKind::Char, "'\\n'")));
        // '_' here is the char literal underscore, three chars long.
        assert!(toks.contains(&(TokenKind::Char, "'_'")));
    }

    #[test]
    fn raw_identifiers_are_idents() {
        let toks = kinds("let r#type = 1;");
        assert!(toks.contains(&(TokenKind::Ident, "r#type")));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let toks = kinds(r##"let a = b"bytes"; let b = b'x'; let c = br#"raw"#;"##);
        assert!(toks.contains(&(TokenKind::Str, "b\"bytes\"")));
        assert!(toks.contains(&(TokenKind::Char, "b'x'")));
        assert!(toks.contains(&(TokenKind::RawStr, "br#\"raw\"#")));
    }

    #[test]
    fn ranges_are_not_swallowed_by_numbers() {
        let toks = kinds("for i in 0..10 { let f = 1.5e3; }");
        assert!(toks.contains(&(TokenKind::Number, "0")));
        assert!(toks.contains(&(TokenKind::Number, "10")));
        assert!(toks.contains(&(TokenKind::Number, "1.5e3")));
    }

    #[test]
    fn method_calls_on_numbers_are_not_swallowed() {
        let toks = kinds("1.max(2)");
        assert!(toks.contains(&(TokenKind::Number, "1")));
        assert!(toks.contains(&(TokenKind::Ident, "max")));
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let toks = lex("a\n  bb");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }
}
