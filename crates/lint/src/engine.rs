//! File classification, `#[cfg(test)]` region detection, inline
//! suppression handling, and the workspace walker.

use std::path::{Path, PathBuf};

use crate::lexer::{lex, Token, TokenKind};
use crate::report::{Finding, LintReport};
use crate::rules::{rule_named, RawFinding, MALFORMED_ALLOW, RULES};

/// What kind of target a file belongs to; decides which rules apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Crate sources (`src/`), including binaries — determinism rules
    /// apply in full.
    Library,
    /// Integration tests (`tests/` directories): may read wall clocks
    /// and pin wire bytes as literals.
    Test,
    /// Bench targets (`benches/`): timing is their job.
    Bench,
    /// Example programs (`examples/`).
    Example,
}

/// One file, lexed and classified — the input every rule sees.
pub struct FileContext {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    pub kind: FileKind,
    pub src: String,
    /// All tokens, comments included.
    pub tokens: Vec<Token>,
    /// Copies of the non-comment tokens, for window matching.
    code: Vec<Token>,
    /// Byte ranges covered by `#[cfg(test)]` / `#[test]` items.
    test_regions: Vec<(usize, usize)>,
}

impl FileContext {
    /// Lexes and classifies `src`.
    pub fn new(path: String, kind: FileKind, src: String) -> Self {
        let tokens = lex(&src);
        let code: Vec<Token> = tokens
            .iter()
            .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
            .copied()
            .collect();
        let test_regions = find_test_regions(&code, &src);
        FileContext {
            path,
            kind,
            src,
            tokens,
            code,
            test_regions,
        }
    }

    /// The non-comment tokens.
    pub fn code(&self) -> &[Token] {
        &self.code
    }

    /// Iterates `(index_into_code, token)` over non-comment tokens.
    pub fn code_tokens(&self) -> impl Iterator<Item = (usize, &Token)> {
        self.code.iter().enumerate()
    }

    /// Whether library-scope determinism rules apply to this file.
    pub fn is_library(&self) -> bool {
        self.kind == FileKind::Library
    }

    /// Whether the token sits inside a `#[cfg(test)]` / `#[test]` item.
    pub fn in_test_region(&self, t: &Token) -> bool {
        self.test_regions
            .iter()
            .any(|&(start, end)| t.start >= start && t.start < end)
    }
}

/// Finds the byte ranges of items annotated `#[test]` or with a `cfg`
/// attribute mentioning `test` (`#[cfg(test)]`, `#[cfg(any(test, …))]`).
/// An item extends over stacked attributes to its closing `}` (or `;`
/// for block-less items).
fn find_test_regions(code: &[Token], src: &str) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < code.len() {
        let Some(attr_end) = attribute_at(code, src, i) else {
            i += 1;
            continue;
        };
        let attr = &code[i + 2..attr_end];
        let mentions_test = attr
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text(src) == "test");
        let is_cfg_or_bare_test = attr
            .first()
            .is_some_and(|t| matches!(t.text(src), "cfg" | "test"));
        if !(mentions_test && is_cfg_or_bare_test) {
            i = attr_end + 1;
            continue;
        }
        // Skip any further stacked attributes.
        let mut k = attr_end + 1;
        while let Some(end) = attribute_at(code, src, k) {
            k = end + 1;
        }
        // The item runs to the matching `}` of its first brace, or to a
        // top-level `;` for block-less items.
        let start_byte = code[i].start;
        let mut depth = 0usize;
        let mut end_byte = src.len();
        let mut m = k;
        while m < code.len() {
            match code[m].text(src) {
                "{" | "(" | "[" => depth += 1,
                "}" | ")" | "]" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 && code[m].text(src) == "}" {
                        end_byte = code[m].end;
                        break;
                    }
                }
                ";" if depth == 0 => {
                    end_byte = code[m].end;
                    break;
                }
                _ => {}
            }
            m += 1;
        }
        regions.push((start_byte, end_byte));
        i = m + 1;
    }
    regions
}

/// If `code[i]` opens an attribute (`#[…]`), returns the index of its
/// closing `]`.
fn attribute_at(code: &[Token], src: &str, i: usize) -> Option<usize> {
    if code.get(i)?.text(src) != "#" || code.get(i + 1)?.text(src) != "[" {
        return None;
    }
    let mut depth = 0usize;
    for (j, t) in code.iter().enumerate().skip(i + 1) {
        match t.text(src) {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// A parsed, well-formed `// lint:allow(<rule>): <reason>` comment.
struct Allow {
    rule: String,
    /// The line whose findings it silences.
    covers_line: u32,
}

/// Scans comments for suppressions. Returns the well-formed allows and
/// any `malformed-allow` findings (missing reason / unknown rule).
fn collect_allows(ctx: &FileContext) -> (Vec<Allow>, Vec<Finding>) {
    let mut allows = Vec::new();
    let mut malformed = Vec::new();
    for t in &ctx.tokens {
        if !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        let text = t.text(&ctx.src);
        // Doc comments are documentation, not suppression sites — they
        // may legitimately *describe* the allow syntax.
        if ["///", "//!", "/**", "/*!"]
            .iter()
            .any(|d| text.starts_with(d))
        {
            continue;
        }
        let Some(at) = text.find("lint:allow") else {
            continue;
        };
        let mut bad = |why: &str| {
            malformed.push(Finding {
                rule: MALFORMED_ALLOW,
                path: ctx.path.clone(),
                line: t.line,
                col: t.col,
                message: format!("{why}; write `// lint:allow(<rule>): <reason>`"),
            });
        };
        let rest = &text[at + "lint:allow".len()..];
        let Some(inner) = rest.strip_prefix('(') else {
            bad("lint:allow needs a parenthesised rule name");
            continue;
        };
        let Some(close) = inner.find(')') else {
            bad("lint:allow rule name is never closed");
            continue;
        };
        let rule = inner[..close].trim().to_string();
        if rule_named(&rule).is_none() {
            bad(&format!(
                "unknown rule '{rule}' (valid: {})",
                RULES.iter().map(|r| r.name).collect::<Vec<_>>().join(", ")
            ));
            continue;
        }
        let after = &inner[close + 1..];
        let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
        if reason.is_empty() {
            bad(&format!(
                "lint:allow({rule}) carries no reason — the reason is mandatory"
            ));
            continue;
        }
        // A trailing comment silences its own line; a standalone
        // comment line silences the next code line.
        let trailing = ctx
            .code()
            .iter()
            .any(|c| c.line == t.line && c.start < t.start);
        let covers_line = if trailing {
            t.line
        } else {
            match ctx.code().iter().find(|c| c.start > t.end) {
                Some(next) => next.line,
                None => t.line,
            }
        };
        allows.push(Allow { rule, covers_line });
    }
    (allows, malformed)
}

/// Lints one in-memory file: every rule, then suppression filtering.
/// Returns the surviving findings and how many were suppressed.
pub fn lint_file(ctx: &FileContext) -> (Vec<Finding>, usize) {
    let (allows, mut findings) = collect_allows(ctx);
    let mut suppressed = 0usize;
    for rule in RULES {
        for RawFinding { token, message } in (rule.check)(ctx) {
            let silenced = allows
                .iter()
                .any(|a| a.rule == rule.name && a.covers_line == token.line);
            if silenced {
                suppressed += 1;
            } else {
                findings.push(Finding {
                    rule: rule.name,
                    path: ctx.path.clone(),
                    line: token.line,
                    col: token.col,
                    message,
                });
            }
        }
    }
    findings.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    (findings, suppressed)
}

/// Classifies a workspace-relative path into a [`FileKind`].
pub fn classify(path: &str) -> FileKind {
    let seg = |s: &str| path.starts_with(&format!("{s}/")) || path.contains(&format!("/{s}/"));
    if seg("tests") {
        FileKind::Test
    } else if seg("benches") {
        FileKind::Bench
    } else if seg("examples") {
        FileKind::Example
    } else {
        FileKind::Library
    }
}

/// Directory names never descended into: build output, vendored
/// third-party stand-ins, VCS metadata, and the lint crate's own
/// deliberately-violating rule fixtures.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures"];

/// Top-level workspace directories containing first-party Rust.
const SCAN_ROOTS: &[&str] = &["crates", "tests", "examples"];

/// Collects every first-party `.rs` file under `root`, sorted, as
/// workspace-relative `/`-separated paths.
pub fn workspace_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    for scan in SCAN_ROOTS {
        let dir = root.join(scan);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut entries: Vec<PathBuf> = entries
        .map(|e| e.map(|e| e.path()))
        .collect::<Result<_, _>>()
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if !SKIP_DIRS.contains(&name) {
                walk(&path, out)?;
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints a set of files. `root` (when given) relativises displayed
/// paths and is how workspace mode runs; explicit file arguments lint
/// with their given path, classified by the same path rules.
pub fn lint_paths(root: Option<&Path>, paths: &[PathBuf]) -> Result<LintReport, String> {
    let mut report = LintReport::default();
    for path in paths {
        let display = match root {
            Some(root) => path
                .strip_prefix(root)
                .unwrap_or(path)
                .to_string_lossy()
                .replace('\\', "/"),
            None => path.to_string_lossy().replace('\\', "/"),
        };
        let src = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let ctx = FileContext::new(display, classify_path(path, root), src);
        let (findings, suppressed) = lint_file(&ctx);
        report.files += 1;
        report.suppressed += suppressed;
        report.findings.extend(findings);
    }
    Ok(report)
}

fn classify_path(path: &Path, root: Option<&Path>) -> FileKind {
    let rel = match root {
        Some(root) => path.strip_prefix(root).unwrap_or(path),
        None => path,
    };
    classify(&rel.to_string_lossy().replace('\\', "/"))
}

/// Runs the linter over the workspace rooted at `root`.
pub fn lint_workspace(root: &Path) -> Result<LintReport, String> {
    let files = workspace_files(root)?;
    lint_paths(Some(root), &files)
}

/// Locates the workspace root: walks up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Result<PathBuf, String> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest)
                .map_err(|e| format!("cannot read {}: {e}", manifest.display()))?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace Cargo.toml found above the working directory".to_string());
        }
    }
}
