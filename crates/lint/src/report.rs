//! Finding records and the human / `--json` renderers.

/// The machine-readable output schema identifier.
pub const LINT_SCHEMA: &str = "sunmap-lint/1";

/// One rule violation at a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name, e.g. `hash-iter`.
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column of the offending token.
    pub col: u32,
    /// What is wrong and what to do instead.
    pub message: String,
}

impl Finding {
    /// The `path:line:col: rule: message` diagnostic line.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: {}: {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// Everything one linter invocation produced.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Unsuppressed findings, in (path, line, col) order.
    pub findings: Vec<Finding>,
    /// Findings silenced by a well-formed `lint:allow`.
    pub suppressed: usize,
    /// Files scanned.
    pub files: usize,
}

impl LintReport {
    /// Human-readable rendering: one diagnostic per line plus a
    /// trailing summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.render());
            out.push('\n');
        }
        out.push_str(&format!(
            "sunmap-lint: {} finding{} ({} suppressed) in {} file{}\n",
            self.findings.len(),
            if self.findings.len() == 1 { "" } else { "s" },
            self.suppressed,
            self.files,
            if self.files == 1 { "" } else { "s" },
        ));
        out
    }

    /// One-line machine-readable JSON (schema [`LINT_SCHEMA`]).
    pub fn render_json(&self) -> String {
        let mut out = format!(
            "{{\"schema\":\"{LINT_SCHEMA}\",\"files\":{},\"suppressed\":{},\"findings\":[",
            self.files, self.suppressed
        );
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":{},\"path\":{},\"line\":{},\"col\":{},\"message\":{}}}",
                json_string(f.rule),
                json_string(&f.path),
                f.line,
                f.col,
                json_string(&f.message)
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Minimal JSON string escaping (the linter is dependency-free).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_path_line_col_rule_message() {
        let f = Finding {
            rule: "hash-iter",
            path: "crates/x/src/lib.rs".to_string(),
            line: 3,
            col: 7,
            message: "no".to_string(),
        };
        assert_eq!(f.render(), "crates/x/src/lib.rs:3:7: hash-iter: no");
    }

    #[test]
    fn json_escapes_quotes_and_controls() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
