//! The determinism & concurrency rule set.
//!
//! Every rule here is keyed to a hazard this codebase has actually hit
//! (or nearly hit) while building byte-identical JSONL streams,
//! bit-identical engines and resumable prefixes:
//!
//! | rule | hazard |
//! |------|--------|
//! | `hash-iter` | `HashMap`/`HashSet` iteration order varies per run |
//! | `float-cmp` | `partial_cmp` ranking ties break nondeterministically |
//! | `wall-clock` | `Instant`/`SystemTime` outside injected-Tick modules |
//! | `bare-spawn` | `thread::spawn` loses panics `thread::scope` propagates |
//! | `unseeded-rng` | entropy-seeded RNGs cannot replay |
//! | `naked-unsafe` | `unsafe` without a `// SAFETY:` justification |
//! | `schema-literal` | duplicated `sunmap-*/N` wire-schema strings drift |
//!
//! Rules are lexical, not type-aware: they match token shapes the
//! hazards reliably wear in this tree. False positives are expected to
//! be rare and are silenced inline with
//! `// lint:allow(<rule>): <reason>` — the reason is mandatory, so
//! every exemption documents itself.

use crate::engine::FileContext;
use crate::lexer::{Token, TokenKind};

/// A raw (pre-suppression) finding: the offending token plus message.
pub struct RawFinding {
    pub token: Token,
    pub message: String,
}

/// One lint rule.
pub struct Rule {
    /// The name used in diagnostics and `lint:allow(...)`.
    pub name: &'static str,
    /// One-line description for `--list-rules`.
    pub summary: &'static str,
    /// Scans a file; suppression is applied by the engine afterwards.
    pub check: fn(&FileContext) -> Vec<RawFinding>,
}

/// The rule emitted for a malformed `lint:allow` comment itself. Not a
/// scanning rule (and not suppressible — an allow cannot excuse its own
/// syntax).
pub const MALFORMED_ALLOW: &str = "malformed-allow";

/// Every scanning rule, in diagnostic order.
pub const RULES: &[Rule] = &[
    Rule {
        name: "hash-iter",
        summary: "HashMap/HashSet in library code: iteration order is nondeterministic",
        check: check_hash_iter,
    },
    Rule {
        name: "float-cmp",
        summary: "partial_cmp on floats in ranking paths: use total_cmp",
        check: check_float_cmp,
    },
    Rule {
        name: "wall-clock",
        summary: "Instant::now/SystemTime outside the timing/metrics/serve/shard modules",
        check: check_wall_clock,
    },
    Rule {
        name: "bare-spawn",
        summary: "thread::spawn where thread::scope is required",
        check: check_bare_spawn,
    },
    Rule {
        name: "unseeded-rng",
        summary: "RNG construction not derived from an explicit seed",
        check: check_unseeded_rng,
    },
    Rule {
        name: "naked-unsafe",
        summary: "unsafe without an adjacent // SAFETY: comment",
        check: check_naked_unsafe,
    },
    Rule {
        name: "schema-literal",
        summary: "wire-schema string duplicated instead of referencing the shared const",
        check: check_schema_literal,
    },
];

/// Looks a rule up by name (for `lint:allow` validation).
pub fn rule_named(name: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.name == name)
}

/// Modules where wall-clock reads are the *point*: latency metrics,
/// the serve/shard daemons' socket timeouts, and the floorplan timing
/// attribution. Everything shard-sim drives must take time as injected
/// Tick events instead.
const WALL_CLOCK_ALLOWED: &[&str] = &[
    "crates/mapping/src/timing.rs",
    "crates/core/src/metrics.rs",
    "crates/core/src/serve.rs",
    "crates/core/src/shard.rs",
];

fn check_hash_iter(ctx: &FileContext) -> Vec<RawFinding> {
    if !ctx.is_library() {
        return Vec::new();
    }
    ctx.code_tokens()
        .filter(|(_, t)| {
            t.kind == TokenKind::Ident && matches!(t.text(&ctx.src), "HashMap" | "HashSet")
        })
        .filter(|(_, t)| !ctx.in_test_region(t))
        .map(|(_, t)| RawFinding {
            token: *t,
            message: format!(
                "{} iteration order is nondeterministic; use BTreeMap/BTreeSet/Vec in \
                 result paths, or annotate why ordering never escapes",
                t.text(&ctx.src)
            ),
        })
        .collect()
}

fn check_float_cmp(ctx: &FileContext) -> Vec<RawFinding> {
    if !ctx.is_library() {
        return Vec::new();
    }
    let code = ctx.code();
    let mut out = Vec::new();
    for (i, t) in ctx.code_tokens() {
        if t.kind != TokenKind::Ident || t.text(&ctx.src) != "partial_cmp" {
            continue;
        }
        // `fn partial_cmp` is a PartialOrd impl, not a call site.
        if i > 0 && code[i - 1].text(&ctx.src) == "fn" {
            continue;
        }
        if ctx.in_test_region(t) {
            continue;
        }
        out.push(RawFinding {
            token: *t,
            message: "partial_cmp on floats yields Equal-on-NaN tie-breaks that are not a \
                      total order; rank with total_cmp"
                .to_string(),
        });
    }
    out
}

fn check_wall_clock(ctx: &FileContext) -> Vec<RawFinding> {
    if !ctx.is_library() || WALL_CLOCK_ALLOWED.iter().any(|m| ctx.path.ends_with(m)) {
        return Vec::new();
    }
    let code = ctx.code();
    let mut out = Vec::new();
    for (i, t) in ctx.code_tokens() {
        if t.kind != TokenKind::Ident || ctx.in_test_region(t) {
            continue;
        }
        let flagged = match t.text(&ctx.src) {
            "SystemTime" => true,
            "Instant" => follows(ctx, code, i, &["::", "now"]),
            _ => false,
        };
        if flagged {
            out.push(RawFinding {
                token: *t,
                message: "wall-clock read outside mapping::timing / core::{metrics, serve, \
                          shard}; simulation-driven code must take time as injected Tick \
                          events"
                    .to_string(),
            });
        }
    }
    out
}

fn check_bare_spawn(ctx: &FileContext) -> Vec<RawFinding> {
    let code = ctx.code();
    let mut out = Vec::new();
    for (i, t) in ctx.code_tokens() {
        if t.kind == TokenKind::Ident
            && t.text(&ctx.src) == "thread"
            && follows(ctx, code, i, &["::", "spawn"])
        {
            out.push(RawFinding {
                token: *t,
                message: "thread::spawn detaches the thread and swallows panics; use \
                          thread::scope so joins are guaranteed and panics propagate"
                    .to_string(),
            });
        }
    }
    out
}

fn check_unseeded_rng(ctx: &FileContext) -> Vec<RawFinding> {
    let code = ctx.code();
    let mut out = Vec::new();
    for (i, t) in ctx.code_tokens() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let flagged = match t.text(&ctx.src) {
            "thread_rng" | "from_entropy" | "OsRng" | "ThreadRng" | "getrandom" => true,
            "rand" => follows(ctx, code, i, &["::", "random"]),
            _ => false,
        };
        if flagged {
            out.push(RawFinding {
                token: *t,
                message: "RNG not derived from an explicit seed cannot replay; construct \
                          via seed_from_u64/from_seed with a seed that reaches the output"
                    .to_string(),
            });
        }
    }
    out
}

/// How many lines above an `unsafe` token a `// SAFETY:` comment may
/// sit (attributes or an `extern "C" {` opener may intervene).
const SAFETY_COMMENT_REACH: u32 = 3;

fn check_naked_unsafe(ctx: &FileContext) -> Vec<RawFinding> {
    // Line spans of every comment mentioning SAFETY:.
    let safety: Vec<(u32, u32)> = ctx
        .tokens
        .iter()
        .filter(|t| {
            matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment)
                && t.text(&ctx.src).contains("SAFETY:")
        })
        .map(|t| {
            let newlines = t.text(&ctx.src).matches('\n').count() as u32;
            (t.line, t.line + newlines)
        })
        .collect();
    ctx.code_tokens()
        .filter(|(_, t)| t.kind == TokenKind::Ident && t.text(&ctx.src) == "unsafe")
        .filter(|(_, t)| {
            let lo = t.line.saturating_sub(SAFETY_COMMENT_REACH);
            !safety
                .iter()
                .any(|&(start, end)| end >= lo && start <= t.line)
        })
        .map(|(_, t)| RawFinding {
            token: *t,
            message: "unsafe without a // SAFETY: comment justifying why the invariants \
                      hold"
                .to_string(),
        })
        .collect()
}

fn check_schema_literal(ctx: &FileContext) -> Vec<RawFinding> {
    if !ctx.is_library() {
        return Vec::new();
    }
    let code = ctx.code();
    let mut out = Vec::new();
    for (i, t) in ctx.code_tokens() {
        if !matches!(t.kind, TokenKind::Str | TokenKind::RawStr) || ctx.in_test_region(t) {
            continue;
        }
        if !contains_schema_pattern(t.text(&ctx.src)) {
            continue;
        }
        // The one legitimate home: the RHS of a `const NAME: &str = …`
        // declaration, which *is* the shared const.
        let is_const_decl = i > 0
            && code[i - 1].text(&ctx.src) == "="
            && code[i.saturating_sub(8)..i]
                .iter()
                .any(|p| p.text(&ctx.src) == "const");
        if is_const_decl {
            continue;
        }
        out.push(RawFinding {
            token: *t,
            message: "wire-schema string duplicated as a literal; interpolate the shared \
                      const (core::schema, sim::sweep) so producers and consumers cannot \
                      drift"
                .to_string(),
        });
    }
    out
}

/// Whether `text` contains a `sunmap-<word>/<digit>` schema identifier.
fn contains_schema_pattern(text: &str) -> bool {
    let bytes = text.as_bytes();
    let needle = b"sunmap-";
    let mut i = 0;
    while i + needle.len() < bytes.len() {
        if &bytes[i..i + needle.len()] == needle {
            let mut j = i + needle.len();
            while j < bytes.len() && (bytes[j].is_ascii_lowercase() || bytes[j] == b'-') {
                j += 1;
            }
            if j > i + needle.len()
                && j + 1 < bytes.len()
                && bytes[j] == b'/'
                && bytes[j + 1].is_ascii_digit()
            {
                return true;
            }
            i = j;
        } else {
            i += 1;
        }
    }
    false
}

/// Whether the code tokens after index `i` spell out `parts` (each part
/// one or more single-char punct tokens, or an identifier), e.g.
/// `follows(.., i, &["::", "now"])` matches `Instant :: now`.
fn follows(ctx: &FileContext, code: &[Token], i: usize, parts: &[&str]) -> bool {
    let mut at = i + 1;
    for part in parts {
        if part.chars().all(|c| c.is_ascii_punctuation()) {
            for ch in part.chars() {
                match code.get(at) {
                    Some(t) if t.text(&ctx.src).len() == 1 && t.text(&ctx.src).starts_with(ch) => {
                        at += 1
                    }
                    _ => return false,
                }
            }
        } else {
            match code.get(at) {
                Some(t) if t.kind == TokenKind::Ident && t.text(&ctx.src) == *part => at += 1,
                _ => return false,
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_pattern_detection() {
        assert!(contains_schema_pattern("\"sunmap-batch/1\""));
        assert!(contains_schema_pattern(
            "\"{\\\"schema\\\":\\\"sunmap-serve-log/1\\\",...}\""
        ));
        assert!(!contains_schema_pattern("\"sunmap-\""));
        assert!(!contains_schema_pattern("\"sunmap batch\""));
        assert!(!contains_schema_pattern("\"sunmap-batch\""));
        assert!(!contains_schema_pattern("\"sunmap-/1\""));
    }
}
