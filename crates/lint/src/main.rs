//! The `sunmap-lint` binary. See the crate docs in `lib.rs` for the
//! rule set and suppression syntax; `make lint` runs this over the
//! workspace after clippy, and CI uploads the `--json` report.

use std::path::PathBuf;
use std::process::ExitCode;

use sunmap_lint::{engine, rules};

const USAGE: &str = "\
usage: sunmap-lint [--workspace | <file.rs> ...] [--json] [--list-rules]

  --workspace    lint every first-party .rs file under the workspace
                 (crates/, tests/, examples/; skips target/, vendor/,
                 and rule fixtures)
  --json         print one machine-readable line (schema sunmap-lint/1)
                 instead of per-finding diagnostics
  --list-rules   print rule names and what each guards, then exit

exit status: 0 clean, 1 findings, 2 usage or I/O error";

fn main() -> ExitCode {
    let mut workspace = false;
    let mut json = false;
    let mut list_rules = false;
    let mut paths: Vec<PathBuf> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--json" => json = true,
            "--list-rules" => list_rules = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("sunmap-lint: unknown flag '{other}'\n{USAGE}");
                return ExitCode::from(2);
            }
            file => paths.push(PathBuf::from(file)),
        }
    }
    if list_rules {
        for rule in rules::RULES {
            println!("{:<16} {}", rule.name, rule.summary);
        }
        return ExitCode::SUCCESS;
    }
    if !workspace && paths.is_empty() {
        eprintln!("sunmap-lint: pass --workspace or explicit files\n{USAGE}");
        return ExitCode::from(2);
    }
    if workspace && !paths.is_empty() {
        eprintln!("sunmap-lint: --workspace and explicit files are mutually exclusive\n{USAGE}");
        return ExitCode::from(2);
    }

    let report = if workspace {
        let cwd = match std::env::current_dir() {
            Ok(cwd) => cwd,
            Err(e) => {
                eprintln!("sunmap-lint: cannot read working directory: {e}");
                return ExitCode::from(2);
            }
        };
        engine::find_workspace_root(&cwd).and_then(|root| engine::lint_workspace(&root))
    } else {
        engine::lint_paths(None, &paths)
    };
    let report = match report {
        Ok(report) => report,
        Err(e) => {
            eprintln!("sunmap-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", report.render_json());
        // Humans watching CI still get the diagnostics, on stderr.
        if !report.findings.is_empty() {
            eprint!("{}", report.render_text());
        }
    } else {
        print!("{}", report.render_text());
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
