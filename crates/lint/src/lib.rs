//! `sunmap-lint`: a determinism & concurrency static-analysis pass.
//!
//! Every PR in this repository stakes its acceptance on determinism —
//! byte-identical JSONL at any worker count, bit-identical simulation
//! engines and route-table preparations, resumable output prefixes.
//! That invariant was historically enforced only by equivalence tests
//! *after the fact*; nothing stopped the next change from
//! reintroducing a `HashMap` iteration into a result path, a
//! `partial_cmp` into a ranking, or an unseeded RNG. This crate makes
//! the discipline machine-checked: a hand-rolled [`lexer`] (comments,
//! strings, raw strings, and char literals classified correctly, never
//! panicking) feeds a [`rules`] engine whose findings fail CI, so
//! correctness scales with the codebase instead of with reviewer
//! vigilance.
//!
//! # Usage
//!
//! ```text
//! sunmap-lint --workspace            # lint every first-party .rs file
//! sunmap-lint path/to/file.rs …      # lint explicit files
//! sunmap-lint --workspace --json     # machine-readable (sunmap-lint/1)
//! sunmap-lint --list-rules           # rule names and summaries
//! ```
//!
//! Exit status: `0` clean, `1` findings, `2` usage or I/O error.
//!
//! # Suppressions
//!
//! A finding is silenced inline, with a mandatory reason:
//!
//! ```text
//! let memo = HashMap::new(); // lint:allow(hash-iter): keyed lookups only, never iterated
//! ```
//!
//! A standalone `// lint:allow(rule): reason` line silences the next
//! code line. An allow without a reason, or naming an unknown rule, is
//! itself a `malformed-allow` finding.

pub mod engine;
pub mod lexer;
pub mod report;
pub mod rules;

pub use engine::{
    find_workspace_root, lint_file, lint_paths, lint_workspace, FileContext, FileKind,
};
pub use report::{Finding, LintReport, LINT_SCHEMA};
pub use rules::RULES;
