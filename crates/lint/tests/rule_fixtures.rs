//! Fixture-driven rule tests: every rule has one firing and one clean
//! fixture under `tests/fixtures/`, linted as library code.

use std::path::Path;

use sunmap_lint::{lint_file, FileContext, FileKind, Finding};

/// Lints a fixture as though it lived at `crates/demo/src/lib.rs`.
fn lint_fixture(name: &str, kind: FileKind) -> (Vec<Finding>, usize) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(format!("{name}.rs"));
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
    let ctx = FileContext::new("crates/demo/src/lib.rs".to_string(), kind, src);
    lint_file(&ctx)
}

fn rules_fired(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

const PAIRS: &[(&str, &str)] = &[
    ("hash-iter", "hash_iter"),
    ("float-cmp", "float_cmp"),
    ("wall-clock", "wall_clock"),
    ("bare-spawn", "bare_spawn"),
    ("unseeded-rng", "unseeded_rng"),
    ("naked-unsafe", "naked_unsafe"),
    ("schema-literal", "schema_literal"),
];

#[test]
fn every_firing_fixture_fires_exactly_its_rule() {
    for (rule, stem) in PAIRS {
        let (findings, _) = lint_fixture(&format!("{stem}_fires"), FileKind::Library);
        let fired = rules_fired(&findings);
        assert!(
            fired.contains(rule),
            "{stem}_fires.rs should fire {rule}, got {fired:?}"
        );
        assert!(
            fired.iter().all(|r| r == rule),
            "{stem}_fires.rs fired unrelated rules: {fired:?}"
        );
    }
}

#[test]
fn every_clean_fixture_is_finding_free() {
    for (_, stem) in PAIRS {
        let (findings, _) = lint_fixture(&format!("{stem}_clean"), FileKind::Library);
        assert!(
            findings.is_empty(),
            "{stem}_clean.rs should be clean, got {findings:?}"
        );
    }
}

#[test]
fn library_only_rules_are_silent_in_test_code() {
    for stem in ["hash_iter", "float_cmp", "wall_clock", "schema_literal"] {
        let (findings, _) = lint_fixture(&format!("{stem}_fires"), FileKind::Test);
        assert!(
            findings.is_empty(),
            "{stem}_fires.rs under tests/ should be exempt, got {findings:?}"
        );
    }
}

#[test]
fn everywhere_rules_still_fire_in_test_code() {
    for (rule, stem) in [
        ("bare-spawn", "bare_spawn"),
        ("unseeded-rng", "unseeded_rng"),
        ("naked-unsafe", "naked_unsafe"),
    ] {
        let (findings, _) = lint_fixture(&format!("{stem}_fires"), FileKind::Test);
        assert!(
            rules_fired(&findings).contains(&rule),
            "{stem}_fires.rs should fire {rule} even under tests/"
        );
    }
}

fn lint_src(src: &str) -> (Vec<Finding>, usize) {
    let ctx = FileContext::new(
        "crates/demo/src/lib.rs".to_string(),
        FileKind::Library,
        src.to_string(),
    );
    lint_file(&ctx)
}

#[test]
fn trailing_allow_suppresses_its_own_line() {
    let (findings, suppressed) =
        lint_src("use std::collections::HashMap; // lint:allow(hash-iter): keyed lookups only\n");
    assert!(findings.is_empty(), "suppressed, got {findings:?}");
    assert_eq!(suppressed, 1);
}

#[test]
fn standalone_allow_covers_the_next_code_line() {
    let (findings, suppressed) =
        lint_src("// lint:allow(hash-iter): keyed lookups only\nuse std::collections::HashMap;\n");
    assert!(findings.is_empty(), "suppressed, got {findings:?}");
    assert_eq!(suppressed, 1);
}

#[test]
fn allow_does_not_leak_past_the_next_line() {
    let src = "// lint:allow(hash-iter): only covers the next line\n\
               use std::collections::BTreeMap;\n\
               use std::collections::HashMap;\n";
    let (findings, _) = lint_src(src);
    assert_eq!(rules_fired(&findings), vec!["hash-iter"]);
}

#[test]
fn allow_without_reason_is_malformed_and_does_not_suppress() {
    let (findings, suppressed) =
        lint_src("use std::collections::HashMap; // lint:allow(hash-iter)\n");
    let fired = rules_fired(&findings);
    assert!(fired.contains(&"malformed-allow"), "got {fired:?}");
    assert!(fired.contains(&"hash-iter"), "got {fired:?}");
    assert_eq!(suppressed, 0);
}

#[test]
fn allow_naming_an_unknown_rule_is_malformed() {
    let (findings, _) = lint_src("fn f() {} // lint:allow(no-such-rule): whatever\n");
    assert_eq!(rules_fired(&findings), vec!["malformed-allow"]);
}

#[test]
fn violations_inside_strings_and_comments_do_not_fire() {
    let src = "// thread::spawn and HashMap in a comment\n\
               pub const DOC: &str = \"Instant::now() and thread::spawn\";\n";
    let (findings, _) = lint_src(src);
    assert!(findings.is_empty(), "got {findings:?}");
}
