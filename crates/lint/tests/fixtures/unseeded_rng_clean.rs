//! Clean fixture: RNG derived from an explicit seed that reaches the
//! output, so every run replays.
use rand::rngs::SmallRng;
use rand::SeedableRng;

pub fn rng_for(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}
