//! Clean fixture: the schema string lives in exactly one shared const
//! and every emit site interpolates it.
pub const DEMO_SCHEMA: &str = "sunmap-demo/1";

pub fn envelope(body: &str) -> String {
    format!("{{\"schema\":\"{DEMO_SCHEMA}\",{body}}}")
}
