//! Firing fixture: entropy-derived RNG construction.
use rand::rngs::SmallRng;
use rand::SeedableRng;

pub fn roll() -> SmallRng {
    SmallRng::from_entropy()
}
