//! Clean fixture: total_cmp ranking; a `fn partial_cmp` definition in a
//! PartialOrd impl is exempt.
use std::cmp::Ordering;

pub struct Cost(pub f64);

impl PartialEq for Cost {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == Ordering::Equal
    }
}

impl PartialOrd for Cost {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.0.total_cmp(&other.0))
    }
}

pub fn rank(mut xs: Vec<f64>) -> Vec<f64> {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs
}
