//! Clean fixture: scoped threads join deterministically and propagate
//! panics.
use std::thread;

pub fn run_both(a: impl FnOnce() + Send, b: impl FnOnce() + Send) {
    thread::scope(|scope| {
        let ha = scope.spawn(a);
        let hb = scope.spawn(b);
        ha.join().expect("a panicked");
        hb.join().expect("b panicked");
    });
}
