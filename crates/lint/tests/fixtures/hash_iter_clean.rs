//! Clean fixture: ordered collections in library code, plus a HashMap
//! confined to a `#[cfg(test)]` module (exempt).
use std::collections::BTreeMap;

pub fn tally(names: &[&str]) -> Vec<(String, usize)> {
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for n in names {
        *counts.entry((*n).to_string()).or_default() += 1;
    }
    counts.into_iter().collect()
}

#[cfg(test)]
mod tests {
    #[test]
    fn hash_in_tests_is_fine() {
        let mut m = std::collections::HashMap::new();
        m.insert(1, 2);
        assert_eq!(m[&1], 2);
    }
}
