//! Firing fixture: unsafe without a SAFETY justification.
pub fn first_byte(bytes: &[u8]) -> u8 {
    unsafe { *bytes.get_unchecked(0) }
}
