//! Firing fixture: HashMap in library result-path code.
use std::collections::HashMap;

pub fn tally(names: &[&str]) -> Vec<(String, usize)> {
    let mut counts: HashMap<String, usize> = HashMap::new();
    for n in names {
        *counts.entry((*n).to_string()).or_default() += 1;
    }
    counts.into_iter().collect()
}
