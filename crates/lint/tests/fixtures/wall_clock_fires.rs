//! Firing fixture: wall-clock reads in non-allowlisted library code.
use std::time::{Instant, SystemTime};

pub fn stamp() -> (u128, u64) {
    let t = Instant::now();
    let epoch = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    (t.elapsed().as_nanos(), epoch)
}
