//! Clean fixture: time arrives as injected ticks, never read from the
//! wall clock. A bare `Instant` type mention without `::now` is fine.
use std::time::Instant;

pub struct Clock {
    now: u64,
}

impl Clock {
    pub fn advance(&mut self, ticks: u64) -> u64 {
        self.now += ticks;
        self.now
    }

    pub fn deadline_of(&self, _started: Instant) -> u64 {
        self.now
    }
}
