//! Firing fixture: wire-schema string duplicated at an emit site.
pub fn envelope(body: &str) -> String {
    format!("{{\"schema\":\"sunmap-demo/1\",{body}}}")
}
