//! Clean fixture: every unsafe site carries an adjacent SAFETY comment.
pub fn first_byte(bytes: &[u8]) -> u8 {
    assert!(!bytes.is_empty());
    // SAFETY: the assert above guarantees index 0 is in bounds.
    unsafe { *bytes.get_unchecked(0) }
}
