//! Firing fixture: partial_cmp ranking in library code.
pub fn rank(mut xs: Vec<f64>) -> Vec<f64> {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    xs
}
