//! Firing fixture: detached thread::spawn.
use std::thread;

pub fn fire_and_forget(work: impl FnOnce() + Send + 'static) {
    thread::spawn(work);
}
