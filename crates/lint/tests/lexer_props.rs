//! Property tests: the lexer is total — any input lexes without
//! panicking, and every token span is a valid, in-bounds, ascending
//! slice of the source.

use proptest::collection;
use proptest::prelude::*;

use sunmap_lint::lexer::lex;

fn spans_are_sane(src: &str) {
    let tokens = lex(src);
    let mut prev_end = 0usize;
    for t in &tokens {
        assert!(t.start >= prev_end, "tokens overlap or go backwards");
        assert!(t.end > t.start, "empty token span");
        assert!(t.end <= src.len(), "span past end of source");
        assert!(src.is_char_boundary(t.start) && src.is_char_boundary(t.end));
        assert!(t.line >= 1 && t.col >= 1, "positions are 1-based");
        prev_end = t.end;
    }
}

/// Fragments chosen to collide with every lexer mode boundary: string
/// and raw-string fences, char-vs-lifetime, comment openers/closers,
/// escapes, numbers that abut `..` and method calls.
const FRAGMENTS: &[&str] = &[
    "\"", "'", "r#", "r#\"", "\"#", "\"##", "b'", "b\"", "br##\"", "//", "/*", "*/", "\\", "\\\"",
    "\n", "0x", "1.", "1.5", "..", "::", "ident", "r#type", "'a", "'a'", "SAFETY:", "#", "r", " ",
    "{", "}", "é", "∂",
];

proptest! {
    #[test]
    fn token_soup_never_panics(picks in collection::vec(0usize..FRAGMENTS.len(), 0..40)) {
        let src: String = picks.iter().map(|&i| FRAGMENTS[i]).collect();
        spans_are_sane(&src);
    }

    #[test]
    fn arbitrary_unicode_never_panics(codes in collection::vec(0u32..0x0011_0000, 0..200)) {
        let src: String = codes.iter().filter_map(|&c| char::from_u32(c)).collect();
        spans_are_sane(&src);
    }
}
