//! End-to-end tests driving the `sunmap-lint` binary on temp files.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sunmap-lint"))
}

/// A unique scratch dir with a `src/` segment so files classify as
/// library code.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("sunmap-lint-cli-{}-{tag}", std::process::id()))
        .join("src");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn write(dir: &std::path::Path, name: &str, src: &str) -> PathBuf {
    let p = dir.join(name);
    std::fs::write(&p, src).expect("write fixture");
    p
}

fn run(args: &[&str]) -> Output {
    bin().args(args).output().expect("binary runs")
}

#[test]
fn violating_file_exits_nonzero_with_diagnostic() {
    let dir = scratch("violating");
    let p = write(&dir, "bad.rs", "use std::collections::HashMap;\n");
    let out = run(&[p.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("hash-iter") && stdout.contains("bad.rs:1:"),
        "diagnostic names the rule and position: {stdout}"
    );
}

#[test]
fn clean_file_exits_zero() {
    let dir = scratch("clean");
    let p = write(&dir, "good.rs", "use std::collections::BTreeMap;\n");
    let out = run(&[p.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
}

#[test]
fn suppressed_file_exits_zero_and_counts_the_allow() {
    let dir = scratch("suppressed");
    let p = write(
        &dir,
        "allowed.rs",
        "use std::collections::HashMap; // lint:allow(hash-iter): keyed lookup only\n",
    );
    let out = run(&[p.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    assert!(String::from_utf8_lossy(&out.stdout).contains("1 suppressed"));
}

#[test]
fn json_mode_emits_the_machine_schema_on_stdout() {
    let dir = scratch("json");
    let p = write(&dir, "bad.rs", "fn f() { unsafe { danger() } }\n");
    let out = run(&["--json", p.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout.lines().next().expect("one JSON line");
    assert!(line.starts_with("{\"schema\":\"sunmap-lint/1\","), "{line}");
    assert!(line.contains("\"rule\":\"naked-unsafe\""), "{line}");
    assert!(line.ends_with('}'), "{line}");
}

#[test]
fn firing_fixtures_drive_the_exit_code() {
    // The committed rule fixtures themselves, fed explicitly (the
    // workspace walk skips `fixtures/`), must trip the gate. Copy one
    // into a src/ path so it classifies as library code.
    let fixture =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/schema_literal_fires.rs");
    let dir = scratch("fixture");
    let p = dir.join("schema_literal_fires.rs");
    std::fs::copy(&fixture, &p).expect("copy fixture");
    let out = run(&[p.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn usage_errors_exit_two() {
    let out = run(&[]);
    assert_eq!(out.status.code(), Some(2));
    let out = run(&["--workspace", "some/file.rs"]);
    assert_eq!(out.status.code(), Some(2));
    let out = run(&["--no-such-flag"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn list_rules_names_every_rule() {
    let out = run(&["--list-rules"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "hash-iter",
        "float-cmp",
        "wall-clock",
        "bare-spawn",
        "unseeded-rng",
        "naked-unsafe",
        "schema-literal",
    ] {
        assert!(stdout.contains(rule), "--list-rules omits {rule}");
    }
}
