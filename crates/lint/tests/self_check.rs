//! The committed workspace must be finding-free: `make lint` gates CI
//! on `sunmap-lint --workspace`, and this test keeps that gate honest
//! from inside the test suite.

use std::path::Path;

use sunmap_lint::{find_workspace_root, lint_workspace};

#[test]
fn committed_workspace_has_zero_findings() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above the lint crate");
    let report = lint_workspace(&root).expect("workspace lints");
    assert!(
        report.findings.is_empty(),
        "the committed tree must lint clean; fix or `// lint:allow(<rule>): <reason>` these:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.files > 100, "workspace walk looks truncated");
}
