//! Shared helpers for the SUNMAP benchmark harness.
//!
//! Every bench target under `benches/` regenerates one table or figure
//! of the DAC 2004 paper: it prints the paper-matching rows/series to
//! stdout and then measures its computational kernel with Criterion.
//! The mapping from paper artifact to bench target is indexed in
//! `DESIGN.md` §5; measured-vs-paper values are recorded in
//! `EXPERIMENTS.md`.

use sunmap::mapping::CostReport;
use sunmap::traffic::CoreGraph;
use sunmap::{Exploration, Objective, RoutingFunction, Sunmap};

pub use sunmap;

/// Runs a standard exploration for `app` with the given knobs — the
/// phase-1/2 sweep every figure-level bench starts from.
pub fn explore(
    app: CoreGraph,
    link_capacity: f64,
    routing: RoutingFunction,
    objective: Objective,
    relaxed_bandwidth: bool,
) -> Exploration {
    let mut builder = Sunmap::builder(app)
        .link_capacity(link_capacity)
        .routing(routing)
        .objective(objective);
    if relaxed_bandwidth {
        builder = builder.constraints(sunmap::Constraints::relaxed_bandwidth());
    }
    builder
        .build()
        .explore()
        .expect("standard library builds for non-empty applications")
}

/// Prints one paper-style table row for a topology's cost report.
pub fn print_row(name: &str, report: Option<&CostReport>) {
    match report {
        Some(r) => println!(
            "{:<10} {:>8.2} {:>9} {:>7} {:>11.2} {:>11.1}",
            name, r.avg_hops, r.switch_count, r.link_count, r.design_area, r.power_mw
        ),
        None => println!(
            "{:<10} {:>8} {:>9} {:>7} {:>11} {:>11}",
            name, "-", "-", "-", "-", "-"
        ),
    }
}

/// Prints the standard table header matching [`print_row`].
pub fn print_header() {
    println!(
        "{:<10} {:>8} {:>9} {:>7} {:>11} {:>11}",
        "Topo", "avg hops", "switches", "links", "area (mm2)", "power (mW)"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunmap::traffic::benchmarks;

    #[test]
    fn explore_helper_matches_direct_use() {
        let ex = explore(
            benchmarks::dsp_filter(),
            1000.0,
            RoutingFunction::MinPath,
            Objective::MinDelay,
            false,
        );
        assert_eq!(ex.candidates.len(), 5);
        assert!(ex.best.is_some());
    }
}
