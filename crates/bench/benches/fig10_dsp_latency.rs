//! Paper Fig. 10(c): DSP filter application — simulated average packet
//! latency of the best mapping on each topology ("SystemC simulation of
//! all topologies", here the trace-driven cycle simulator).
//!
//! Shape to reproduce: "the butterfly topology indeed has the minimum
//! latency"; the 3-stage Clos sits at the high end.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use sunmap::sim::{SimConfig, SimSession};
use sunmap::traffic::benchmarks;
use sunmap::{Objective, RoutingFunction};
use sunmap_bench::explore;

const INTENSITY: f64 = 0.45;

fn print_figure() {
    let app = benchmarks::dsp_filter();
    let ex = explore(
        app.clone(),
        1000.0,
        RoutingFunction::MinPath,
        Objective::MinDelay,
        false,
    );
    println!("== Fig. 10(c): DSP filter, simulated avg packet latency ==");
    println!(
        "{:<11} {:>10} {:>10} {:>9}",
        "topology", "lat (cy)", "packets", "delivery"
    );
    for c in &ex.candidates {
        match &c.outcome {
            Ok(mapping) => {
                let mut sim = SimSession::builder(&c.graph)
                    .config(SimConfig::default())
                    .build();
                let stats = sim.run_trace(mapping.evaluation(), &app, INTENSITY);
                println!(
                    "{:<11} {:>10.1} {:>10} {:>8.0}%",
                    c.kind.name(),
                    stats.avg_latency,
                    stats.packets_delivered,
                    stats.delivery_ratio() * 100.0
                );
            }
            Err(_) => println!("{:<11} {:>10}", c.kind.name(), "infeasible"),
        }
    }
    println!("(paper shape: butterfly minimum, clos maximum)");
}

fn bench(c: &mut Criterion) {
    print_figure();
    let app = benchmarks::dsp_filter();
    let ex = explore(
        app.clone(),
        1000.0,
        RoutingFunction::MinPath,
        Objective::MinDelay,
        false,
    );
    let best = ex.best_candidate().expect("dsp maps feasibly");
    let mapping = best.outcome.as_ref().expect("best is feasible");
    c.bench_function("fig10c/dsp_trace_simulation", |b| {
        b.iter(|| {
            let mut sim = SimSession::builder(black_box(&best.graph))
                .config(SimConfig::fast())
                .build();
            sim.run_trace(mapping.evaluation(), &app, INTENSITY)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
