//! Paper Fig. 8(c,d): 16-node network processor — design area and
//! power per topology (mappings produced with relaxed bandwidth
//! constraints, as §6.2 does before simulating).
//!
//! Shape to reproduce: the Clos's area and power are "only slightly
//! higher than the butterfly topology", while torus and hypercube cost
//! the most.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use sunmap::traffic::benchmarks;
use sunmap::{Objective, RoutingFunction};
use sunmap_bench::explore;

fn print_figure() {
    let ex = explore(
        benchmarks::network_processor(100.0),
        500.0,
        RoutingFunction::SplitMinPaths,
        Objective::MinDelay,
        true,
    );
    println!("== Fig. 8(c,d): network processor design area & power ==");
    println!(
        "{:<11} {:>11} {:>11}",
        "topology", "area (mm2)", "power (mW)"
    );
    for c in &ex.candidates {
        match c.report() {
            Some(r) => println!(
                "{:<11} {:>11.2} {:>11.1}",
                c.kind.name(),
                r.design_area,
                r.power_mw
            ),
            None => println!("{:<11} {:>11} {:>11}", c.kind.name(), "-", "-"),
        }
    }
    let bfly = ex.candidates[4].report();
    let clos = ex.candidates[3].report();
    if let (Some(b), Some(c)) = (bfly, clos) {
        println!(
            "clos/butterfly ratios: area {:.2}, power {:.2} (paper: 'only slightly higher')",
            c.design_area / b.design_area,
            c.power_mw / b.power_mw
        );
    }
}

fn bench(c: &mut Criterion) {
    print_figure();
    let app = benchmarks::network_processor(100.0);
    c.bench_function("fig8cd/netproc_exploration", |b| {
        b.iter(|| {
            explore(
                black_box(app.clone()),
                500.0,
                RoutingFunction::SplitMinPaths,
                Objective::MinDelay,
                true,
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
