//! Batch-exploration throughput: full `run_batch` invocations over a
//! mixed seed + synthetic grid, reported as explorations per second.
//!
//! This is the engine the ROADMAP's batching/sharding direction rests
//! on: each job is a complete phase-1/2 exploration (five topologies,
//! swap search, floorplan, selection), and the batch runner shares one
//! `RouteTable` per topology across every job a worker executes. The
//! bench measures the end-to-end grid on one worker and on one worker
//! per CPU (on the 1-CPU CI container both report the same number; the
//! comparison is meaningful on wider machines).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use sunmap::batch::{run_batch, BatchManifest};

/// An 8-job grid: two seed benchmarks and two synthetic workloads,
/// each explored under two objectives.
const GRID: &str = "\
app dsp
app vopd
app synth:seed=1,cores=8
app synth:seed=2,cores=12,locality=0.7
objective power
objective delay
routing MP
capacity 1000
";

fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

fn print_summary() {
    let manifest = BatchManifest::parse(GRID).expect("bench grid parses");
    let jobs = manifest.jobs().expect("bench grid loads");
    println!("== batch exploration throughput ({} jobs) ==", jobs.len());
    for (label, workers) in [("1 worker", 1usize), ("1/cpu", 0)] {
        let start = std::time::Instant::now();
        let mut lines = 0usize;
        run_batch(&jobs, workers, |_, _| {
            lines += 1;
            true
        });
        let elapsed = start.elapsed();
        println!(
            "  {:<9} {:>2} explorations in {:>7.1} ms = {:>6.1} explorations/s",
            label,
            lines,
            elapsed.as_secs_f64() * 1e3,
            lines as f64 / elapsed.as_secs_f64()
        );
    }
}

fn bench(c: &mut Criterion) {
    if !smoke_mode() {
        print_summary();
    }
    let manifest = BatchManifest::parse(GRID).expect("bench grid parses");
    let jobs = manifest.jobs().expect("bench grid loads");
    let mut group = c.benchmark_group("batch_throughput");
    group.sample_size(10);
    for (label, workers) in [("jobs8/workers1", 1usize), ("jobs8/workers_auto", 0)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut lines = 0usize;
                run_batch(black_box(&jobs), workers, |_, line| {
                    lines += line.len();
                    true
                });
                lines
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
