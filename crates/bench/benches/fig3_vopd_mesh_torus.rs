//! Paper Fig. 3(d): VOPD mapped onto mesh and torus — average hops,
//! design area, design power and the torus/mesh ratios.
//!
//! Paper values: hops 2.25 vs 2.03 (ratio 0.90), area 54.59 vs 57.91
//! (ratio 1.06), power 372.1 vs 454.9 (ratio 1.22). The shape to
//! reproduce: the torus trades slightly fewer hops for noticeably more
//! area and power.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use sunmap::topology::builders;
use sunmap::traffic::benchmarks;
use sunmap::{Mapper, MapperConfig, Objective, RoutingFunction};

fn print_figure() {
    let vopd = benchmarks::vopd();
    let cfg = MapperConfig::new(RoutingFunction::MinPath, Objective::MinPower);
    let mesh = builders::mesh(3, 4, 500.0).unwrap();
    let torus = builders::torus(3, 4, 500.0).unwrap();
    let m = Mapper::new(&mesh, &vopd, cfg).run().expect("mesh feasible");
    let t = Mapper::new(&torus, &vopd, cfg)
        .run()
        .expect("torus feasible");
    let (m, t) = (m.report(), t.report());

    println!("== Fig. 3(d): VOPD mesh vs torus ==");
    println!(
        "{:<12} {:>9} {:>9} {:>11}",
        "metric", "Mesh", "Torus", "tor/mesh"
    );
    println!(
        "{:<12} {:>9.2} {:>9.2} {:>11.2}   (paper: 2.25, 2.03, 0.90)",
        "avg hops",
        m.avg_hops,
        t.avg_hops,
        t.avg_hops / m.avg_hops
    );
    println!(
        "{:<12} {:>9.2} {:>9.2} {:>11.2}   (paper: 54.59, 57.91, 1.06)",
        "area (mm2)",
        m.design_area,
        t.design_area,
        t.design_area / m.design_area
    );
    println!(
        "{:<12} {:>9.1} {:>9.1} {:>11.2}   (paper: 372.1, 454.9, 1.22)",
        "power (mW)",
        m.power_mw,
        t.power_mw,
        t.power_mw / m.power_mw
    );
}

fn bench(c: &mut Criterion) {
    print_figure();
    let vopd = benchmarks::vopd();
    let mesh = builders::mesh(3, 4, 500.0).unwrap();
    let cfg = MapperConfig::new(RoutingFunction::MinPath, Objective::MinPower);
    c.bench_function("fig3d/vopd_mesh_mapping", |b| {
        b.iter(|| {
            Mapper::new(black_box(&mesh), black_box(&vopd), cfg)
                .run()
                .expect("mesh feasible")
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
