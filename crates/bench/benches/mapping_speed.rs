//! Paper §6.4 runtime claim: "for all these applications NoC selection
//! and generation was obtained in few minutes on a 1 GHz SUN
//! workstation".
//!
//! This bench times the full selection flow (phases 1+2 over the whole
//! topology library) for each of the paper's applications, plus a
//! *scaling* group driving the mapper's swap search on synthetic 8×8
//! and 10×10 mesh workloads built from [`sunmap::traffic::patterns`],
//! reported as candidate-evaluations/second. On modern hardware the
//! paper apps complete in milliseconds; the synthetic workloads show
//! how the cached evaluation engine holds up far beyond the paper's
//! 12–16 core benchmarks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;
use sunmap::mapping::{Constraints, Mapper, MapperConfig};
use sunmap::topology::builders;
use sunmap::traffic::patterns::TrafficPattern;
use sunmap::traffic::{benchmarks, CoreGraph};
use sunmap::{Objective, RoutingFunction, Sunmap};

fn apps() -> Vec<(&'static str, CoreGraph, f64, RoutingFunction)> {
    vec![
        ("vopd", benchmarks::vopd(), 500.0, RoutingFunction::MinPath),
        (
            "mpeg4",
            benchmarks::mpeg4(),
            500.0,
            RoutingFunction::SplitAllPaths,
        ),
        (
            "dsp_filter",
            benchmarks::dsp_filter(),
            1000.0,
            RoutingFunction::MinPath,
        ),
        (
            "netproc16",
            benchmarks::network_processor(100.0),
            500.0,
            RoutingFunction::SplitMinPaths,
        ),
    ]
}

fn print_summary() {
    println!("== §6.4: end-to-end selection runtime per application ==");
    for (name, app, cap, routing) in apps() {
        let tool = Sunmap::builder(app)
            .link_capacity(cap)
            .routing(routing)
            .build();
        let start = std::time::Instant::now();
        let ex = tool.explore().expect("library builds");
        let elapsed = start.elapsed();
        let evaluated: usize = ex
            .candidates
            .iter()
            .filter_map(|c| c.outcome.as_ref().ok().map(|m| m.evaluated_candidates()))
            .sum();
        println!(
            "  {:<10} {:>8.1} ms, {} candidate mappings evaluated, best: {}",
            name,
            elapsed.as_secs_f64() * 1e3,
            evaluated,
            ex.best_candidate().map(|c| c.kind.name()).unwrap_or("none")
        );
    }
}

/// Builds a synthetic application of `n` cores whose traffic follows a
/// classic adversarial pattern over the terminals (one commodity per
/// injecting core, bandwidths staggered so the decreasing-bandwidth
/// routing order is non-trivial).
fn pattern_app(n: usize, pattern: &TrafficPattern) -> CoreGraph {
    let mut rng = SmallRng::seed_from_u64(0x5EED);
    let mut app = CoreGraph::new();
    let cores: Vec<_> = (0..n)
        .map(|i| app.add_core(format!("c{i}"), 1.0 + (i % 4) as f64 * 0.5))
        .collect();
    for src in 0..n {
        if let Some(dst) = pattern.destination(src, n, &mut rng) {
            let bw = 40.0 + (src % 8) as f64 * 15.0;
            app.add_traffic(cores[src], cores[dst], bw)
                .expect("pattern destinations are valid distinct cores");
        }
    }
    app
}

/// The scaling workloads: mesh side length, traffic pattern, routing.
fn scaling_workloads() -> Vec<(&'static str, usize, CoreGraph, RoutingFunction)> {
    vec![
        (
            "mesh8x8/transpose/MP",
            8,
            pattern_app(64, &TrafficPattern::Transpose),
            RoutingFunction::MinPath,
        ),
        (
            "mesh8x8/bit_reverse/SM",
            8,
            pattern_app(64, &TrafficPattern::BitReverse),
            RoutingFunction::SplitMinPaths,
        ),
        (
            "mesh10x10/tornado/MP",
            10,
            pattern_app(100, &TrafficPattern::Tornado),
            RoutingFunction::MinPath,
        ),
    ]
}

/// One steepest-descent pass over all vertex pairs; bandwidth relaxed
/// so every synthetic pattern maps (the metric is evaluation
/// throughput, not feasibility). The sweep stays exhaustive so this
/// group keeps measuring raw full-evaluation throughput — the
/// `mapping_scale` bench covers the delta-pruned engine.
fn scaling_config(routing: RoutingFunction) -> MapperConfig {
    MapperConfig {
        routing,
        objective: Objective::MinDelay,
        constraints: Constraints::relaxed_bandwidth(),
        max_swap_passes: 1,
        swap_strategy: sunmap::mapping::SwapStrategy::Exhaustive,
        ..MapperConfig::default()
    }
}

fn print_scaling_summary() {
    println!("== scaling: candidate evaluations/second on synthetic meshes ==");
    for (name, side, app, routing) in scaling_workloads() {
        let g = builders::mesh(side, side, 500.0).expect("mesh builds");
        let start = std::time::Instant::now();
        let mapping = Mapper::new(&g, &app, scaling_config(routing))
            .run()
            .expect("synthetic workload maps under relaxed bandwidth");
        let elapsed = start.elapsed();
        let evals = mapping.evaluated_candidates();
        println!(
            "  {:<24} {:>8} evals in {:>8.1} ms = {:>9.0} evals/s",
            name,
            evals,
            elapsed.as_secs_f64() * 1e3,
            evals as f64 / elapsed.as_secs_f64()
        );
    }
}

/// Whether the bench binary runs in criterion's `--test` smoke mode;
/// the summary printers do full explores/mapper runs, so smoke mode
/// skips them to keep CI at one execution per workload.
fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

fn bench(c: &mut Criterion) {
    if !smoke_mode() {
        print_summary();
    }
    let mut group = c.benchmark_group("selection_flow");
    group.sample_size(10);
    for (name, app, cap, routing) in apps() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &app, |b, app| {
            let tool = Sunmap::builder(app.clone())
                .link_capacity(cap)
                .routing(routing)
                .objective(Objective::MinDelay)
                .build();
            b.iter(|| black_box(&tool).explore().expect("library builds"))
        });
    }
    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    if !smoke_mode() {
        print_scaling_summary();
    }
    let mut group = c.benchmark_group("mapper_scaling");
    group.sample_size(10);
    for (name, side, app, routing) in scaling_workloads() {
        let g = builders::mesh(side, side, 500.0).expect("mesh builds");
        group.bench_with_input(BenchmarkId::from_parameter(name), &app, |b, app| {
            b.iter(|| {
                Mapper::new(&g, black_box(app), scaling_config(routing))
                    .run()
                    .expect("synthetic workload maps under relaxed bandwidth")
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench, bench_scaling
}
criterion_main!(benches);
