//! Paper §6.4 runtime claim: "for all these applications NoC selection
//! and generation was obtained in few minutes on a 1 GHz SUN
//! workstation".
//!
//! This bench times the full selection flow (phases 1+2 over the whole
//! topology library) for each of the paper's applications, plus the
//! phase-3 generation step. On modern hardware the flow completes in
//! milliseconds-to-seconds; the shape to reproduce is simply
//! "interactive-scale, not overnight-scale".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use sunmap::traffic::benchmarks;
use sunmap::traffic::CoreGraph;
use sunmap::{Objective, RoutingFunction, Sunmap};

fn apps() -> Vec<(&'static str, CoreGraph, f64, RoutingFunction)> {
    vec![
        ("vopd", benchmarks::vopd(), 500.0, RoutingFunction::MinPath),
        (
            "mpeg4",
            benchmarks::mpeg4(),
            500.0,
            RoutingFunction::SplitAllPaths,
        ),
        (
            "dsp_filter",
            benchmarks::dsp_filter(),
            1000.0,
            RoutingFunction::MinPath,
        ),
        (
            "netproc16",
            benchmarks::network_processor(100.0),
            500.0,
            RoutingFunction::SplitMinPaths,
        ),
    ]
}

fn print_summary() {
    println!("== §6.4: end-to-end selection runtime per application ==");
    for (name, app, cap, routing) in apps() {
        let tool = Sunmap::builder(app)
            .link_capacity(cap)
            .routing(routing)
            .build();
        let start = std::time::Instant::now();
        let ex = tool.explore().expect("library builds");
        let elapsed = start.elapsed();
        let evaluated: usize = ex
            .candidates
            .iter()
            .filter_map(|c| c.outcome.as_ref().ok().map(|m| m.evaluated_candidates()))
            .sum();
        println!(
            "  {:<10} {:>8.1} ms, {} candidate mappings evaluated, best: {}",
            name,
            elapsed.as_secs_f64() * 1e3,
            evaluated,
            ex.best_candidate().map(|c| c.kind.name()).unwrap_or("none")
        );
    }
}

fn bench(c: &mut Criterion) {
    print_summary();
    let mut group = c.benchmark_group("selection_flow");
    group.sample_size(10);
    for (name, app, cap, routing) in apps() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &app, |b, app| {
            let tool = Sunmap::builder(app.clone())
                .link_capacity(cap)
                .routing(routing)
                .objective(Objective::MinDelay)
                .build();
            b.iter(|| black_box(&tool).explore().expect("library builds"))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
