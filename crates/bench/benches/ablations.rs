//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! 1. **Quadrant graphs** (paper §4.1: "large computational time
//!    savings ... as the number of nodes in a quadrant graph is much
//!    smaller than the total NoC nodes"): Dijkstra restricted to the
//!    quadrant vs the full graph, on an 8x8 mesh.
//! 2. **Pair-wise swap refinement** (Fig. 5 steps 9-10): mapping
//!    quality with 0 vs 4 improvement passes.
//! 3. **Greedy seeding** (Fig. 5 step 1): the greedy initial mapping vs
//!    a naive identity placement, measured by the delay cost before any
//!    swapping.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use sunmap::mapping::{evaluate, Constraints, Placement};
use sunmap::power::{AreaPowerLibrary, Technology};
use sunmap::topology::{builders, paths, quadrant};
use sunmap::traffic::benchmarks;
use sunmap::{Mapper, MapperConfig, Objective, RoutingFunction};

fn print_swap_and_seed_ablations() {
    let vopd = benchmarks::vopd();
    let mesh = builders::mesh(3, 4, 500.0).unwrap();

    println!("== Ablation: pair-wise swap passes (VOPD on mesh, min-delay) ==");
    for passes in [0usize, 1, 4] {
        let cfg = MapperConfig {
            max_swap_passes: passes,
            ..MapperConfig::new(RoutingFunction::MinPath, Objective::MinDelay)
        };
        let m = Mapper::new(&mesh, &vopd, cfg).run().expect("feasible");
        println!(
            "  passes={passes}: avg hops {:.3}, power {:.1} mW, {} candidates evaluated",
            m.report().avg_hops,
            m.report().power_mw,
            m.evaluated_candidates()
        );
    }

    println!("\n== Ablation: greedy seed vs identity placement (no swaps) ==");
    let cfg_no_swaps = MapperConfig {
        max_swap_passes: 0,
        ..MapperConfig::default()
    };
    let greedy = Mapper::new(&mesh, &vopd, cfg_no_swaps)
        .run()
        .expect("feasible");
    let identity = Placement::new(mesh.mappable_nodes()[..12].to_vec(), &mesh).unwrap();
    let mut lib = AreaPowerLibrary::new(Technology::um_0_10());
    let naive = evaluate(
        &mesh,
        &vopd,
        identity,
        RoutingFunction::MinPath,
        &mut lib,
        &Constraints::default(),
    )
    .expect("identity placement evaluates");
    println!(
        "  greedy seed: avg hops {:.3}; identity: avg hops {:.3}",
        greedy.report().avg_hops,
        naive.report.avg_hops
    );
}

fn bench(c: &mut Criterion) {
    print_swap_and_seed_ablations();

    // Quadrant-graph computational-savings ablation on a larger mesh,
    // where the effect is most visible.
    let mesh = builders::mesh(8, 8, 500.0).unwrap();
    let pairs: Vec<_> = {
        let nodes = mesh.mappable_nodes().to_vec();
        (0..nodes.len())
            .flat_map(|i| {
                let nodes = nodes.clone();
                (0..nodes.len())
                    .filter(move |j| i != *j)
                    .map(move |j| (nodes[i], nodes[j]))
            })
            .step_by(13)
            .collect()
    };
    println!(
        "\n== Ablation: quadrant vs full-graph Dijkstra (8x8 mesh, {} pairs) ==",
        pairs.len()
    );

    let mut group = c.benchmark_group("quadrant_ablation");
    group.sample_size(20);
    group.bench_function("dijkstra_on_quadrant", |b| {
        b.iter(|| {
            for &(s, d) in &pairs {
                let q = quadrant::quadrant_set(&mesh, s, d);
                black_box(paths::dijkstra(&mesh, s, d, Some(&q), |_| 1.0));
            }
        })
    });
    group.bench_function("dijkstra_on_full_graph", |b| {
        b.iter(|| {
            for &(s, d) in &pairs {
                black_box(paths::dijkstra(&mesh, s, d, None, |_| 1.0));
            }
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
