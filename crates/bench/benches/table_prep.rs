//! Route-table preparation cost across strategies and scale tiers
//! (ISSUE 9): eager dense enumeration vs lazy BFS-only vs closed-form
//! coordinate arithmetic, building a ready-to-map table for a
//! `synth:seed=7` mesh workload at 64, 256 and 1024 cores.
//!
//! "Build" here is what a cold `Mapper::run` pays before the first
//! evaluation: `RouteTable::with_prep` (adjacency + hop distances)
//! plus `prepare` for dimension-ordered routing. The eager row
//! enumerates all `m²` pairs up front — the wall the lazy and
//! closed-form strategies remove (the equivalence suite proves the
//! answers bit-identical) — so it is benched only up to 256 cores;
//! the non-smoke summary prints a one-shot eager timing at 1024 next
//! to the lazy/closed-form rows instead of sampling a ~20 s body.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use sunmap::mapping::RouteTable;
use sunmap::topology::builders;
use sunmap::{RoutingFunction, TablePrep, TopologyGraph};

const TIERS: [(usize, usize); 3] = [(64, 8), (256, 16), (1024, 32)];

const PREPS: [TablePrep; 3] = [TablePrep::Eager, TablePrep::Lazy, TablePrep::ClosedForm];

/// Eager enumeration is only sampled up to this tier; above it one
/// timing in the summary documents the wall without dominating the
/// bench run.
const EAGER_SAMPLED_MAX: usize = 256;

fn mesh(side: usize) -> TopologyGraph {
    builders::mesh(side, side, 500.0).expect("mesh builds")
}

fn build(g: &TopologyGraph, prep: TablePrep) -> RouteTable {
    let mut table = RouteTable::with_prep(g, prep);
    table.prepare(g, RoutingFunction::DimensionOrdered);
    table
}

fn print_summary() {
    println!("== table_prep: route-table build cost by strategy ==");
    for (cores, side) in TIERS {
        let g = mesh(side);
        for prep in PREPS {
            let start = std::time::Instant::now();
            let table = build(&g, prep);
            let secs = start.elapsed().as_secs_f64();
            println!(
                "  {cores:>4}c {:<11} {:>10.2} ms (resolved {}, {} pairs materialised)",
                prep.name(),
                secs * 1e3,
                table.prep().name(),
                table.materialized_pairs(RoutingFunction::DimensionOrdered),
            );
        }
    }
}

/// Criterion smoke/`--test` mode skips the summary (it already runs
/// each bench body once).
fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

fn bench_table_prep(c: &mut Criterion) {
    if !smoke_mode() {
        print_summary();
    }
    let mut group = c.benchmark_group("table_prep");
    group.sample_size(10);
    for (cores, side) in TIERS {
        let g = mesh(side);
        for prep in PREPS {
            if prep == TablePrep::Eager && cores > EAGER_SAMPLED_MAX {
                continue;
            }
            let id = BenchmarkId::new(prep.name(), cores);
            group.bench_with_input(id, &g, |b, g| b.iter(|| build(black_box(g), prep)));
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table_prep
}
criterion_main!(benches);
