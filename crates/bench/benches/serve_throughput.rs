//! Serve-path throughput: the same `ExploreRequest` answered cold (a
//! fresh `RequestRunner`, so the candidate library and route tables
//! are rebuilt every time — what a process-per-request CLI pays) and
//! warm (one runner reused, route tables served from the LRU cache —
//! what the `sunmap serve` daemon pays after the first request on a
//! topology). The gap between the two groups is the measured value of
//! keeping the cache hot; the summary prints it as requests/second.
//!
//! Before timing anything the bench asserts the daemon's two core
//! invariants: a repeated topology is a cache hit, and warm and cold
//! runs produce byte-identical report lines.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use sunmap::request::{ExploreRequest, RequestRunner};

/// The request under test: the 6-core DSP filter at 1000 MB/s (the
/// paper's Fig. 10 configuration), small enough that route-table
/// construction is a visible share of the cold request.
fn request() -> ExploreRequest {
    let mut req = ExploreRequest::new("dsp".parse().expect("built-in benchmark"));
    req.capacity = 1000.0;
    req
}

fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

fn requests_per_sec(n: usize, mut run: impl FnMut()) -> f64 {
    let start = std::time::Instant::now();
    for _ in 0..n {
        run();
    }
    n as f64 / start.elapsed().as_secs_f64()
}

fn print_summary() {
    let req = request();
    const N: usize = 10;
    let cold = requests_per_sec(N, || {
        RequestRunner::new(1).run(&req).expect("cold request runs");
    });
    let mut runner = RequestRunner::new(1);
    runner.run(&req).expect("priming request runs");
    let warm = requests_per_sec(N, || {
        runner.run(&req).expect("warm request runs");
    });
    println!("== serve throughput: warm cache vs cold start ==");
    println!("  cold (rebuild route tables) {cold:>8.1} requests/s");
    println!("  warm (LRU-cached tables)    {warm:>8.1} requests/s");
    println!("  warm/cold speedup           {:>8.2}x", warm / cold);
}

fn bench(c: &mut Criterion) {
    let req = request();
    // Correctness gates before any timing: the warm path must actually
    // hit the cache, and caching must never change the report bytes.
    let cold = RequestRunner::new(1).run(&req).expect("cold run");
    assert!(!cold.cache_hit, "a fresh runner cannot hit its cache");
    let mut warm_runner = RequestRunner::new(1);
    warm_runner.run(&req).expect("priming run");
    let warm = warm_runner.run(&req).expect("warm run");
    assert!(warm.cache_hit, "a repeated topology must be served warm");
    assert_eq!(
        warm.line, cold.line,
        "warm and cold reports must be byte-identical"
    );

    if !smoke_mode() {
        print_summary();
    }
    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(10);
    group.bench_function("explore/cold", |b| {
        b.iter(|| {
            RequestRunner::new(1)
                .run(black_box(&req))
                .expect("cold request runs")
                .line
                .len()
        })
    });
    let mut runner = RequestRunner::new(1);
    runner.run(&req).expect("priming request runs");
    group.bench_function("explore/warm", |b| {
        b.iter(|| {
            runner
                .run(black_box(&req))
                .expect("warm request runs")
                .line
                .len()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
