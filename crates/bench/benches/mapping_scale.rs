//! Large-topology scaling of the phase-3 swap search: the incremental
//! swap-delta engine (ISSUE 5) against the exhaustive full-sweep on
//! seeded synthetic mesh workloads.
//!
//! Workloads are `synth:seed=7` applications on square meshes — 64
//! cores (8×8) and 256 cores (16×16) — under MinPath and
//! dimension-ordered routing for both the delay and the power
//! objective, bandwidth relaxed and one swap pass (the paper performs
//! one pass). The non-smoke summary times both engines on the 64-core
//! workloads — asserting bit-identical winner reports and placements,
//! and printing the overall speedup (the ISSUE-5 acceptance bar is
//! ≥ 3× on the exhaustive total; measured ~3.9× on the 1-CPU CI
//! container) — and the delta engine alone at 256 cores, where the
//! exhaustive sweep is the ROADMAP's "does not finish in reasonable
//! time" blocker. Reported metrics: wall time and
//! candidate-evaluations/second.
//!
//! Route tables are prepared *outside* every timed region (summary and
//! Criterion groups alike), so these numbers isolate the swap search;
//! table construction is measured by the `table_prep` bench target.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use sunmap::mapping::{Constraints, Mapper, MapperConfig, RouteTable, SwapStrategy};
use sunmap::topology::builders;
use sunmap::traffic::synthetic::SyntheticSpec;
use sunmap::traffic::CoreGraph;
use sunmap::{Objective, RoutingFunction, TopologyGraph};

struct Workload {
    name: &'static str,
    app: CoreGraph,
    graph: TopologyGraph,
    routing: RoutingFunction,
    objective: Objective,
}

fn workloads(cores: usize, side: usize) -> Vec<Workload> {
    let spec: SyntheticSpec = format!("synth:seed=7,cores={cores}")
        .parse()
        .expect("valid spec");
    let app = spec.generate();
    let configs: [(&'static str, RoutingFunction, Objective); 4] = [
        ("MP/delay", RoutingFunction::MinPath, Objective::MinDelay),
        ("MP/power", RoutingFunction::MinPath, Objective::MinPower),
        (
            "DO/delay",
            RoutingFunction::DimensionOrdered,
            Objective::MinDelay,
        ),
        (
            "DO/power",
            RoutingFunction::DimensionOrdered,
            Objective::MinPower,
        ),
    ];
    configs
        .into_iter()
        .map(|(name, routing, objective)| Workload {
            name,
            app: app.clone(),
            graph: builders::mesh(side, side, 500.0).expect("mesh builds"),
            routing,
            objective,
        })
        .collect()
}

fn config(w: &Workload, strategy: SwapStrategy) -> MapperConfig {
    MapperConfig {
        routing: w.routing,
        objective: w.objective,
        constraints: Constraints::relaxed_bandwidth(),
        max_swap_passes: 1,
        swap_strategy: strategy,
        ..MapperConfig::default()
    }
}

/// A route table prepared outside any timed region, so summary and
/// bench timings measure the swap search alone — the table build has
/// its own `table_prep` bench group.
fn prepared_table(w: &Workload) -> RouteTable {
    let mut table = RouteTable::new(&w.graph);
    table.prepare(&w.graph, w.routing);
    table
}

fn timed_run(
    w: &Workload,
    table: &mut RouteTable,
    strategy: SwapStrategy,
) -> (f64, usize, sunmap::mapping::Mapping) {
    let start = std::time::Instant::now();
    let mapping = Mapper::new(&w.graph, &w.app, config(w, strategy))
        .with_route_table(table)
        .run()
        .expect("synthetic workload maps under relaxed bandwidth");
    let secs = start.elapsed().as_secs_f64();
    let evals = mapping.evaluated_candidates();
    (secs, evals, mapping)
}

fn print_summary() {
    println!("== mapping_scale: incremental swap-delta engine vs exhaustive sweep ==");
    let mut delta_total = 0.0;
    let mut full_total = 0.0;
    for w in workloads(64, 8) {
        let mut table = prepared_table(&w);
        let (dt, de, dm) = timed_run(&w, &mut table, SwapStrategy::DeltaPruned);
        let (ft, fe, fm) = timed_run(&w, &mut table, SwapStrategy::Exhaustive);
        assert_eq!(
            dm.report(),
            fm.report(),
            "64c {}: winner reports diverged",
            w.name
        );
        assert_eq!(
            dm.placement().assignment(),
            fm.placement().assignment(),
            "64c {}: placements diverged",
            w.name
        );
        delta_total += dt;
        full_total += ft;
        println!(
            "  64c  {:<9} delta {:>8.1} ms ({:>5} evals, {:>9.0} evals/s) | full {:>8.1} ms \
             ({:>5} evals) | {:>5.1}x  winners identical",
            w.name,
            dt * 1e3,
            de,
            de as f64 / dt,
            ft * 1e3,
            fe,
            ft / dt
        );
    }
    println!(
        "  64c  total     delta {:>8.1} ms | full {:>8.1} ms | {:.1}x overall",
        delta_total * 1e3,
        full_total * 1e3,
        full_total / delta_total
    );
    for w in workloads(256, 16) {
        let mut table = prepared_table(&w);
        let (dt, de, dm) = timed_run(&w, &mut table, SwapStrategy::DeltaPruned);
        println!(
            "  256c {:<9} delta {:>8.1} ms ({:>5} evals, {:>9.0} evals/s) avg_hops {:.3}",
            w.name,
            dt * 1e3,
            de,
            de as f64 / dt,
            dm.report().avg_hops
        );
    }
}

/// Criterion smoke/`--test` mode skips the summary (it already runs
/// each bench body once).
fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

fn bench_scale_64(c: &mut Criterion) {
    if !smoke_mode() {
        print_summary();
    }
    let mut group = c.benchmark_group("mapping_scale_64");
    group.sample_size(10);
    for w in workloads(64, 8) {
        // Prepared once, outside the timed region: the bench measures
        // the swap search, not the route-table build.
        let mut table = prepared_table(&w);
        group.bench_with_input(BenchmarkId::from_parameter(w.name), &w, |b, w| {
            b.iter(|| {
                Mapper::new(
                    &w.graph,
                    black_box(&w.app),
                    config(w, SwapStrategy::DeltaPruned),
                )
                .with_route_table(&mut table)
                .run()
                .expect("synthetic workload maps under relaxed bandwidth")
            })
        });
    }
    group.finish();
}

fn bench_scale_256(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapping_scale_256");
    group.sample_size(10);
    // The acceptance pair: MinPath under delay and power objectives on
    // the 16×16 mesh, through the delta engine (the exhaustive sweep is
    // the blocker this engine removes, so it is not benched here).
    for w in workloads(256, 16) {
        if w.routing != RoutingFunction::MinPath {
            continue;
        }
        let mut table = prepared_table(&w);
        group.bench_with_input(BenchmarkId::from_parameter(w.name), &w, |b, w| {
            b.iter(|| {
                Mapper::new(
                    &w.graph,
                    black_box(&w.app),
                    config(w, SwapStrategy::DeltaPruned),
                )
                .with_route_table(&mut table)
                .run()
                .expect("synthetic workload maps under relaxed bandwidth")
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_scale_64, bench_scale_256
}
criterion_main!(benches);
