//! `sim_speed`: throughput of the indexed simulation engines in
//! simulated cycles per second and delivered flits per second,
//! benchmarked against the pre-rebuild reference engine
//! (`sunmap::sim::reference`).
//!
//! The headline configuration is the acceptance one — a 4×4 mesh under
//! uniform traffic at 0.05 flits/cycle/terminal — plus a loaded torus,
//! a trace-driven VOPD replay and a low-load tier comparing the flat
//! and event-driven engines on a 4×4 and a 16×16 mesh. All engines
//! produce bit-identical `LatencyStats` (enforced by
//! `crates/sim/tests/flat_equivalence.rs`), so every row here times the
//! production of the same result.
//!
//! Two throughput metrics are reported, because they answer different
//! questions:
//!
//! * **same-simulation** (default config): wall-clock to complete the
//!   standard 11k-cycle simulation. The flat engine legitimately stops
//!   early once the post-injection network is provably empty (the
//!   remaining drain cycles cannot change any statistic), so this
//!   ratio credits both per-cycle speed *and* the skipped dead tail.
//! * **per-cycle** (drain-free config): injection runs to the last
//!   cycle, so the early exit cannot trigger and both engines simulate
//!   *exactly* the same number of cycles — the pure engine-speed
//!   ratio.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use sunmap::sim::{SimConfig, SimEngine, SimSession};
use sunmap::topology::builders;
use sunmap::topology::TopologyGraph;
use sunmap::traffic::benchmarks;
use sunmap::traffic::patterns::TrafficPattern;
use sunmap::{Mapper, MapperConfig};

/// Nominal cycles per run (warmup + measure + drain) for the default
/// configuration every engine simulates.
fn nominal_cycles(config: &SimConfig) -> u64 {
    config.warmup_cycles + config.measure_cycles + config.drain_cycles
}

/// A fresh session over `graph` pinned to `engine`.
fn session<'a>(graph: &'a TopologyGraph, config: SimConfig, engine: SimEngine) -> SimSession<'a> {
    SimSession::builder(graph)
        .config(SimConfig { engine, ..config })
        .build()
}

/// Median wall-clock of `runs` invocations of `f`.
fn median_secs<F: FnMut()>(runs: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn bench_synthetic(c: &mut Criterion) {
    let config = SimConfig::default();
    let mesh = builders::mesh(4, 4, 500.0).unwrap();
    let torus = builders::torus(4, 4, 500.0).unwrap();

    let mut group = c.benchmark_group("sim_speed");
    group.sample_size(10);

    let mut flat_mesh = session(&mesh, config, SimEngine::Flat);
    group.bench_function("flat/mesh4x4_uniform_0.05", |b| {
        b.iter(|| flat_mesh.run_synthetic(&TrafficPattern::UniformRandom, 0.05))
    });
    let mut ref_mesh = session(&mesh, config, SimEngine::Reference);
    group.bench_function("reference/mesh4x4_uniform_0.05", |b| {
        b.iter(|| ref_mesh.run_synthetic(&TrafficPattern::UniformRandom, 0.05))
    });

    let mut flat_torus = session(&torus, config, SimEngine::Flat);
    group.bench_function("flat/torus4x4_tornado_0.30", |b| {
        b.iter(|| flat_torus.run_synthetic(&TrafficPattern::Tornado, 0.30))
    });
    let mut ref_torus = session(&torus, config, SimEngine::Reference);
    group.bench_function("reference/torus4x4_tornado_0.30", |b| {
        b.iter(|| ref_torus.run_synthetic(&TrafficPattern::Tornado, 0.30))
    });
    group.finish();

    // The acceptance numbers, in engine-meaningful units (see the
    // module docs for the two metrics).
    let flat_s = median_secs(5, || {
        flat_mesh.run_synthetic(&TrafficPattern::UniformRandom, 0.05);
    });
    let ref_s = median_secs(5, || {
        ref_mesh.run_synthetic(&TrafficPattern::UniformRandom, 0.05);
    });

    // Drain-free runs: both engines simulate exactly these cycles.
    let pc_config = SimConfig {
        drain_cycles: 0,
        ..config
    };
    let pc_cycles = nominal_cycles(&pc_config) as f64;
    let mut flat_pc = session(&mesh, pc_config, SimEngine::Flat);
    let mut ref_pc = session(&mesh, pc_config, SimEngine::Reference);
    let stats = flat_pc.run_synthetic(&TrafficPattern::UniformRandom, 0.05);
    let flits = (stats.packets_delivered * pc_config.packet_flits) as f64;
    ref_pc.run_synthetic(&TrafficPattern::UniformRandom, 0.05);
    let flat_pc_s = median_secs(5, || {
        flat_pc.run_synthetic(&TrafficPattern::UniformRandom, 0.05);
    });
    let ref_pc_s = median_secs(5, || {
        ref_pc.run_synthetic(&TrafficPattern::UniformRandom, 0.05);
    });
    println!(
        "sim_speed summary (mesh 4x4, uniform, 0.05 flits/cy/term):\n\
           per-cycle (drain-free, identical cycle counts):\n\
             flat      {:>12.0} cycles/s {:>12.0} flits/s\n\
             reference {:>12.0} cycles/s {:>12.0} flits/s\n\
             speedup   {:>11.2}x\n\
           same-simulation (default config; flat skips the provably\n\
           empty drain tail):\n\
             speedup   {:>11.2}x  ({:.2} ms vs {:.2} ms per run)",
        pc_cycles / flat_pc_s,
        flits / flat_pc_s,
        pc_cycles / ref_pc_s,
        flits / ref_pc_s,
        ref_pc_s / flat_pc_s,
        ref_s / flat_s,
        flat_s * 1e3,
        ref_s * 1e3,
    );
}

/// Low-load tier: the regime the event-driven engine exists for. At
/// 0.01–0.05 flits/cycle/terminal most routers idle most cycles, so
/// the active-set walk beats the flat engine's full edge scan — and
/// the gap should widen with network size (4×4 → 16×16). Reported as
/// ratios, not asserted: absolute wall-clock is machine-dependent.
fn bench_low_load(c: &mut Criterion) {
    let config = SimConfig::default();
    let small = builders::mesh(4, 4, 500.0).unwrap();
    let large = builders::mesh(16, 16, 500.0).unwrap();
    let grids: [(&str, &TopologyGraph); 2] = [("mesh4x4", &small), ("mesh16x16", &large)];
    let rates = [0.01, 0.05];

    let mut group = c.benchmark_group("sim_speed_low_load");
    group.sample_size(10);
    for (name, g) in grids {
        for rate in rates {
            for engine in [SimEngine::Flat, SimEngine::EventDriven] {
                let mut s = session(g, config, engine);
                let id = format!("{}/{name}_uniform_{rate:.2}", engine.name());
                group.bench_function(&id, |b| {
                    b.iter(|| s.run_synthetic(&TrafficPattern::UniformRandom, rate))
                });
            }
        }
    }
    group.finish();

    let cycles = nominal_cycles(&config) as f64;
    println!("sim_speed low-load summary (uniform, same-simulation cycles/s):");
    for (name, g) in grids {
        for rate in rates {
            let time = |engine: SimEngine| {
                let mut s = session(g, config, engine);
                s.run_synthetic(&TrafficPattern::UniformRandom, rate);
                median_secs(3, || {
                    s.run_synthetic(&TrafficPattern::UniformRandom, rate);
                })
            };
            let flat_s = time(SimEngine::Flat);
            let event_s = time(SimEngine::EventDriven);
            println!(
                "  {name:<10} rate {rate:.2}: flat {:>12.0}  event {:>12.0}  event/flat {:>6.2}x",
                cycles / flat_s,
                cycles / event_s,
                flat_s / event_s,
            );
        }
    }
}

fn bench_trace(c: &mut Criterion) {
    let config = SimConfig::default();
    let g = builders::mesh(3, 4, 500.0).unwrap();
    let app = benchmarks::vopd();
    let mapping = Mapper::new(&g, &app, MapperConfig::default())
        .run()
        .unwrap();

    let mut group = c.benchmark_group("sim_speed");
    group.sample_size(10);
    let mut flat = session(&g, config, SimEngine::Flat);
    group.bench_function("flat/trace_vopd_mesh3x4_0.35", |b| {
        b.iter(|| flat.run_trace(mapping.evaluation(), &app, 0.35))
    });
    let mut old = session(&g, config, SimEngine::Reference);
    group.bench_function("reference/trace_vopd_mesh3x4_0.35", |b| {
        b.iter(|| old.run_trace(mapping.evaluation(), &app, 0.35))
    });
    group.finish();
}

criterion_group!(sim_speed, bench_synthetic, bench_low_load, bench_trace);
criterion_main!(sim_speed);
