//! Paper Fig. 8(b): 16-node network processor — average packet latency
//! versus injection rate per topology under adversarial traffic.
//!
//! Shape to reproduce: all topologies start near their zero-load
//! latency at 0.05-0.1 flits/cycle; as injection grows the
//! single-path butterfly and the low-bisection mesh saturate first,
//! while the Clos — maximal path diversity — keeps the lowest latency
//! deep into the sweep ("the clos clearly outperforms other
//! topologies").

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use sunmap::sim::{adversarial_pattern, latency_sweep, SimConfig, SimSession};
use sunmap::topology::builders;
use sunmap::traffic::patterns::TrafficPattern;

const RATES: [f64; 10] = [0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5];

fn print_figure() {
    println!("== Fig. 8(b): avg packet latency (cycles) vs injection rate (flits/cycle) ==");
    print!("{:<11}", "topology");
    for r in RATES {
        print!("{r:>8.2}");
    }
    println!("  pattern");
    for g in builders::standard_library(16, 500.0).unwrap() {
        let pattern = adversarial_pattern(g.kind());
        let curve = latency_sweep(&g, SimConfig::default(), &pattern, &RATES);
        print!("{:<11}", g.kind().name());
        for (_, lat) in curve {
            if lat > 0.0 {
                print!("{lat:>8.1}");
            } else {
                print!("{:>8}", "-");
            }
        }
        println!("  {}", pattern.name());
    }
}

fn bench(c: &mut Criterion) {
    print_figure();
    let clos = builders::clos(4, 4, 4, 500.0).unwrap();
    c.bench_function("fig8b/clos_sim_0.2", |b| {
        b.iter(|| {
            let mut sim = SimSession::builder(black_box(&clos))
                .config(SimConfig::fast())
                .build();
            sim.run_synthetic(&TrafficPattern::Transpose, 0.2)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
