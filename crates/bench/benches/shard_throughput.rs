//! Distributed-batch throughput: the same job grid assembled by a
//! `shard` coordinator over real TCP with one worker process-alike and
//! with two, reported as explorations per second. The gap between the
//! two groups is what a second machine buys after the frame protocol,
//! lease accounting and in-order reassembly take their cut (on the
//! 1-CPU CI container the two numbers converge; the comparison is
//! meaningful on wider machines).
//!
//! Before timing anything the bench asserts the subsystem's core
//! invariant: the coordinator's assembled lines are byte-identical to
//! a single-process `run_batch` over the same manifest.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use sunmap::batch::{manifest_fingerprint, run_batch, BatchJob, BatchManifest};
use sunmap::shard::{run_coordinator, run_worker, CoordConfig};

/// A 6-job grid: three applications under two objectives, small enough
/// that protocol overhead is a visible share of each lease.
const GRID: &str = "\
app dsp
app synth:seed=1,cores=8
app synth:seed=2,cores=12,locality=0.7
objective power
objective delay
routing MP
capacity 1000
";

fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Runs the full coordinator + `workers` worker threads cycle over
/// TCP and returns the assembled lines.
fn distributed_run(jobs: &[BatchJob], workers: usize) -> Vec<String> {
    let fingerprint = manifest_fingerprint(jobs);
    let config = CoordConfig {
        total_jobs: jobs.len(),
        grain: 1,
        fingerprint: fingerprint.clone(),
        ..CoordConfig::default()
    };
    let (addr_tx, addr_rx) = std::sync::mpsc::channel();
    let mut lines = Vec::new();
    std::thread::scope(|scope| {
        let coordinator = scope.spawn(|| {
            run_coordinator(
                config,
                "127.0.0.1:0",
                move |addr| {
                    let _ = addr_tx.send(addr);
                },
                |_, line| {
                    lines.push(line.to_string());
                    true
                },
            )
            .expect("coordinator completes")
        });
        let addr = addr_rx.recv().expect("coordinator announces").to_string();
        let handles: Vec<_> = (0..workers)
            .map(|i| {
                let addr = addr.clone();
                let fingerprint = fingerprint.clone();
                scope.spawn(move || {
                    run_worker(jobs, &fingerprint, &format!("bench-w{i}"), &addr, 5_000)
                        .expect("worker completes")
                })
            })
            .collect();
        let summary = coordinator.join().expect("coordinator thread");
        assert_eq!(summary.jobs_delivered, jobs.len());
        for handle in handles {
            handle.join().expect("worker thread");
        }
    });
    lines
}

fn oracle(jobs: &[BatchJob]) -> Vec<String> {
    let mut lines = Vec::new();
    run_batch(jobs, 1, |_, line| {
        lines.push(line.to_string());
        true
    });
    lines
}

fn print_summary(jobs: &[BatchJob]) {
    println!("== distributed batch throughput ({} jobs) ==", jobs.len());
    for workers in [1usize, 2] {
        let start = std::time::Instant::now();
        let lines = distributed_run(jobs, workers);
        let elapsed = start.elapsed();
        println!(
            "  {} worker(s) {:>2} explorations in {:>7.1} ms = {:>6.1} explorations/s",
            workers,
            lines.len(),
            elapsed.as_secs_f64() * 1e3,
            lines.len() as f64 / elapsed.as_secs_f64()
        );
    }
}

fn bench(c: &mut Criterion) {
    let manifest = BatchManifest::parse(GRID).expect("bench grid parses");
    let jobs = manifest.jobs().expect("bench grid loads");

    // Correctness gate before any timing: distribution must not change
    // a single byte of the output.
    let baseline = oracle(&jobs);
    assert_eq!(
        distributed_run(&jobs, 2),
        baseline,
        "distributed assembly must be byte-identical to a local run"
    );

    if !smoke_mode() {
        print_summary(&jobs);
    }
    let mut group = c.benchmark_group("shard_throughput");
    group.sample_size(10);
    for workers in [1usize, 2] {
        let label = format!("jobs6/workers{workers}");
        group.bench_function(&label, |b| {
            b.iter(|| distributed_run(black_box(&jobs), workers).len())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
