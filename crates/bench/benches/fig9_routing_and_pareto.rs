//! Paper Fig. 9(a,b): design-space exploration of the MPEG4 mesh
//! mapping.
//!
//! * Fig. 9(a): minimum required link bandwidth per routing function
//!   (DO, MP, SM, SA). Shape: a descending staircase; at 500 MB/s links
//!   only the split-traffic functions fit.
//! * Fig. 9(b): area-power Pareto points over mesh mappings.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use sunmap::topology::builders;
use sunmap::traffic::benchmarks;
use sunmap::{pareto_exploration, routing_bandwidth_sweep};

fn print_figure() {
    let mpeg4 = benchmarks::mpeg4();
    let mesh = builders::mesh(3, 4, 500.0).unwrap();

    println!("== Fig. 9(a): minimum link bandwidth per routing function (MPEG4, mesh) ==");
    for e in routing_bandwidth_sweep(&mpeg4, &mesh) {
        println!(
            "  {:<3} {:>8.1} MB/s{}",
            e.routing.abbrev(),
            e.min_bandwidth,
            if e.min_bandwidth <= 500.0 {
                "   <= fits 500 MB/s links"
            } else {
                ""
            }
        );
    }
    println!("(paper shape: DO >= MP > SM >= SA, with only SM/SA under 500)");

    println!("\n== Fig. 9(b): area-power Pareto points (MPEG4, mesh) ==");
    let (points, front) = pareto_exploration(&mpeg4, &mesh);
    println!("explored {} mappings; Pareto front:", points.len());
    for p in &front {
        println!("  {:>8.2} mm2 {:>8.1} mW   [{}]", p.x, p.y, p.label);
    }
}

fn bench(c: &mut Criterion) {
    print_figure();
    let mpeg4 = benchmarks::mpeg4();
    let mesh = builders::mesh(3, 4, 500.0).unwrap();
    c.bench_function("fig9a/routing_bandwidth_sweep", |b| {
        b.iter(|| routing_bandwidth_sweep(black_box(&mpeg4), black_box(&mesh)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
