//! Paper Fig. 7(b): MPEG4 mappings per topology under split-traffic
//! routing.
//!
//! Paper values: mesh 2.49 hops / 62.51 mm² / 504.1 mW, torus 2.47 /
//! 66.03 / 546.7, hypercube 2.48 / 67.05 / 541.4, Clos 3.0 / 64.38 /
//! 445.4, butterfly: *no feasible mapping*. Shape to reproduce: every
//! topology needs split routing (min-path violates the 500 MB/s links
//! everywhere), the butterfly stays infeasible because it has no path
//! diversity, and the mesh wins on the area/power-vs-delay balance.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use sunmap::topology::builders;
use sunmap::traffic::benchmarks;
use sunmap::{Mapper, MapperConfig, Objective, RoutingFunction};
use sunmap_bench::{explore, print_header, print_row};

fn print_figure() {
    let mpeg4 = benchmarks::mpeg4();

    // First the paper's preamble claim: min-path routing is infeasible
    // on every topology at 500 MB/s.
    let mp = explore(
        mpeg4.clone(),
        500.0,
        RoutingFunction::MinPath,
        Objective::MinDelay,
        false,
    );
    let mp_feasible = mp.candidates.iter().filter(|c| c.outcome.is_ok()).count();
    println!(
        "min-path routing: {mp_feasible}/5 topologies feasible \
         (paper: 0/5 — 'all topologies violate the bandwidth constraints')"
    );

    let ex = explore(
        mpeg4,
        500.0,
        RoutingFunction::SplitAllPaths,
        Objective::MinDelay,
        false,
    );
    println!("\n== Fig. 7(b): MPEG4 mappings (split-traffic routing) ==");
    print_header();
    for c in &ex.candidates {
        print_row(c.kind.name(), c.report());
    }
    println!(
        "selected: {} (paper: mesh; butterfly row must be infeasible)",
        ex.best_candidate().map(|c| c.kind.name()).unwrap_or("none")
    );
}

fn bench(c: &mut Criterion) {
    print_figure();
    let mpeg4 = benchmarks::mpeg4();
    let mesh = builders::mesh(3, 4, 500.0).unwrap();
    let cfg = MapperConfig::new(RoutingFunction::SplitAllPaths, Objective::MinDelay);
    c.bench_function("fig7b/mpeg4_mesh_split_mapping", |b| {
        b.iter(|| {
            Mapper::new(black_box(&mesh), black_box(&mpeg4), cfg)
                .run()
                .expect("mesh feasible with split routing")
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
