//! Paper Fig. 6(a-d): VOPD mapping characteristics across the full
//! topology library — average hop delay, switch/link resource counts,
//! design area and design power.
//!
//! Shape to reproduce: the 4-ary 2-fly butterfly has exactly 2 hops
//! (least delay), the fewest switches but more links than the direct
//! topologies, the least area and the least power; torus and hypercube
//! cost more than the mesh; the Clos sits at 3 hops.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use sunmap::traffic::benchmarks;
use sunmap::{Objective, RoutingFunction};
use sunmap_bench::{explore, print_header, print_row};

fn print_figure() {
    let ex = explore(
        benchmarks::vopd(),
        500.0,
        RoutingFunction::MinPath,
        Objective::MinPower,
        false,
    );
    println!("== Fig. 6: VOPD mapping characteristics (min-path routing) ==");
    print_header();
    for c in &ex.candidates {
        print_row(c.kind.name(), c.report());
    }
    println!(
        "selected: {} (paper: butterfly best on delay, area and power)",
        ex.best_candidate().map(|c| c.kind.name()).unwrap_or("none")
    );
}

fn bench(c: &mut Criterion) {
    print_figure();
    let vopd = benchmarks::vopd();
    c.bench_function("fig6/vopd_full_exploration", |b| {
        b.iter(|| {
            explore(
                black_box(vopd.clone()),
                500.0,
                RoutingFunction::MinPath,
                Objective::MinPower,
                false,
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
