# Developer entry points. Each target runs exactly what CI runs
# (.github/workflows/ci.yml), so `make ci` passing locally means the
# workflow will pass too.

CARGO ?= cargo

.PHONY: all build test bench bench-smoke lint fmt ci clean

all: build

## Build every crate in release mode (the tier-1 build).
build:
	$(CARGO) build --release --workspace

## Run the full test suite: unit, integration, property, doc tests.
test:
	$(CARGO) test -q --workspace

## Compile all Criterion bench targets without running them.
bench:
	$(CARGO) bench --no-run --workspace

## Run the benches for real (prints paper-figure tables + timings).
bench-run:
	$(CARGO) bench --workspace

## Smoke-run the mapping-speed bench: each benchmark body executes once
## under the vendored criterion's --test mode (no warm-up, no sampling),
## so CI verifies the bench actually runs without paying for
## measurement.
bench-smoke:
	$(CARGO) bench --bench mapping_speed -- --test

## Formatting + clippy, both as hard errors, matching the CI gates.
lint:
	$(CARGO) fmt --all -- --check
	$(CARGO) clippy --workspace --all-targets -- -D warnings

## Apply rustfmt in place.
fmt:
	$(CARGO) fmt --all

## Everything CI gates on, in CI's order.
ci: lint build test bench bench-smoke

clean:
	$(CARGO) clean
