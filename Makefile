# Developer entry points. Each target runs exactly what CI runs
# (.github/workflows/ci.yml), so `make ci` passing locally means the
# workflow will pass too.
#
# Every cargo invocation carries --locked: Cargo.lock is committed, and
# silent lockfile drift should fail loudly here and in CI.

CARGO ?= cargo

BENCH_SMOKE_JSONL := target/bench-smoke.jsonl
BENCH_RESULTS := target/BENCH_results.json

.PHONY: all build test bench bench-run bench-smoke batch-smoke serve-smoke shard-smoke scale-smoke sim-equiv table-equiv doc lint fmt ci clean

all: build

## Build every crate in release mode (the tier-1 build).
build:
	$(CARGO) build --locked --release --workspace

## Run the full test suite: unit, integration, property, doc tests.
test:
	$(CARGO) test --locked -q --workspace

## Compile all Criterion bench targets without running them.
bench:
	$(CARGO) bench --locked --no-run --workspace

## Run the benches for real (prints paper-figure tables + timings).
bench-run:
	$(CARGO) bench --locked --workspace

## Smoke-run EVERY bench target: each benchmark body executes once
## under the vendored criterion's --test mode (no warm-up, no
## sampling), so CI verifies that no bench target rots unexecuted.
## Each run appends a JSON-lines record to $(BENCH_SMOKE_JSONL); the
## recipe wraps them into the $(BENCH_RESULTS) artifact CI uploads.
bench-smoke:
	rm -f $(BENCH_SMOKE_JSONL)
	CRITERION_SMOKE_JSON=$(CURDIR)/$(BENCH_SMOKE_JSONL) \
		$(CARGO) bench --locked -p sunmap-bench --benches -- --test
	@printf '{"schema":"sunmap-bench-smoke/1","benches":[' > $(BENCH_RESULTS)
	@paste -sd, $(BENCH_SMOKE_JSONL) >> $(BENCH_RESULTS)
	@printf ']}\n' >> $(BENCH_RESULTS)
	@echo "wrote $(BENCH_RESULTS)"

## Smoke-run the batch exploration engine end-to-end: the committed
## 20-job sample manifest (4 seed benchmarks + 16 synthetic workloads)
## through the sunmap binary, sharded across 2 workers. Output must be
## non-empty JSONL with one line per job.
batch-smoke:
	rm -rf target/batch-smoke
	$(CARGO) run --locked --release -p sunmap-cli -- batch \
		--jobs examples/batch.manifest --out target/batch-smoke --workers 2
	@test "$$(wc -l < target/batch-smoke/batch.jsonl)" -eq 20 \
		|| { echo "batch-smoke: expected 20 JSONL lines"; exit 1; }
	@echo "wrote target/batch-smoke/batch.jsonl (20 jobs)"

## Smoke-run the `sunmap serve` daemon end-to-end through the release
## binary: start it on a free port, answer three explore requests (one
## synthetic), assert the stats counters record a warm-cache hit and
## byte-identity with the one-shot CLI, drain gracefully, and replay
## the request log.
serve-smoke: build
	sh scripts/serve_smoke.sh target/release/sunmap target/serve-smoke

## Smoke-run the distributed batch pipeline through the release
## binary: a coordinator and two workers run the sample manifest, one
## worker is kill -9'd mid-run, and the assembled JSONL must be
## byte-identical to a single-process `batch` run.
shard-smoke: build
	sh scripts/shard_smoke.sh target/release/sunmap target/shard-smoke

## Smoke-run the large-topology mapping path through the release
## binary: a 64-core full-library explore byte-compared across every
## route-table preparation strategy, the pinned 256/1024-core scale
## goldens, and the 4096-core mesh wall-clock smoke (release only —
## the debug tier-1 suite skips the 4096 run).
scale-smoke: build
	sh scripts/scale_smoke.sh target/release/sunmap target/scale-smoke

## Deep-run the three-way engine equivalence suite (reference == flat
## == event-driven, bit for bit). SIM_EQUIV_CASES=N adds N extra
## injection rates per scenario on top of the committed ones; raise it
## for a longer soak (CI runs the default via `make test`).
SIM_EQUIV_CASES ?= 4
sim-equiv:
	SIM_EQUIV_CASES=$(SIM_EQUIV_CASES) $(CARGO) test --locked -p sunmap-sim \
		--test flat_equivalence -- --nocapture

## Deep-run the route-table preparation equivalence suite (lazy ==
## closed-form == eager, bit for bit). TABLE_EQUIV_CASES=N soaks N
## extra synthetic seeds per scale tier on top of the committed ones
## (CI runs the default via `make test`).
TABLE_EQUIV_CASES ?= 4
table-equiv:
	TABLE_EQUIV_CASES=$(TABLE_EQUIV_CASES) $(CARGO) test --locked -p sunmap-mapping \
		--test table_prep_equivalence -- --nocapture

## Build API docs for every workspace crate with rustdoc warnings as
## hard errors (broken intra-doc links rot fast otherwise).
doc:
	RUSTDOCFLAGS="-D warnings" $(CARGO) doc --locked --workspace --no-deps

LINT_JSON := target/lint.json

## Formatting + clippy + sunmap-lint (the in-tree determinism &
## concurrency pass), all as hard errors, matching the CI gates. The
## machine-readable report lands in $(LINT_JSON) whether or not the
## human-readable run passes.
lint:
	$(CARGO) fmt --all -- --check
	$(CARGO) clippy --locked --workspace --all-targets -- -D warnings
	$(CARGO) run --locked --release -q -p sunmap-lint -- --workspace --json \
		> $(LINT_JSON)
	@echo "wrote $(LINT_JSON)"

## Apply rustfmt in place.
fmt:
	$(CARGO) fmt --all

## Everything CI gates on, in CI's order.
ci: lint build test doc bench bench-smoke batch-smoke serve-smoke shard-smoke scale-smoke

clean:
	$(CARGO) clean
