#!/bin/sh
# Smoke-test the `sunmap serve` daemon end-to-end through the release
# binary: start it on a free port, answer three explore requests (one
# of them synthetic), check the stats counters prove a warm-cache hit,
# verify byte-identity against the one-shot CLI, drain gracefully, and
# replay the request log.
#
# Usage: scripts/serve_smoke.sh <path-to-sunmap-binary> <scratch-dir>
set -eu

SUNMAP=${1:?usage: serve_smoke.sh <sunmap-binary> <scratch-dir>}
DIR=${2:?usage: serve_smoke.sh <sunmap-binary> <scratch-dir>}

rm -rf "$DIR"
mkdir -p "$DIR"
LOG="$DIR/requests.jsonl"
STDOUT="$DIR/serve.stdout"

fail() {
    echo "serve-smoke: $1" >&2
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
}

"$SUNMAP" serve --listen 127.0.0.1:0 --workers 2 --cache 4 --log "$LOG" \
    > "$STDOUT" &
SERVE_PID=$!

# The daemon prints a flushed "sunmap-serve listening on <addr>" line
# before accepting its first frame; poll for it.
ADDR=
tries=0
while [ -z "$ADDR" ]; do
    tries=$((tries + 1))
    [ "$tries" -le 100 ] || fail "daemon never announced its address"
    kill -0 "$SERVE_PID" 2>/dev/null || fail "daemon exited prematurely"
    ADDR=$(sed -n 's/^sunmap-serve listening on //p' "$STDOUT")
    [ -n "$ADDR" ] || sleep 0.1
done
echo "serve-smoke: daemon is up on $ADDR"

# Three explore requests: dsp twice (the repeat must be a cache hit)
# and one synthetic workload.
"$SUNMAP" client "$ADDR" explore dsp --capacity 1000 > "$DIR/served.json"
"$SUNMAP" client "$ADDR" explore dsp --capacity 1000 > "$DIR/served2.json"
"$SUNMAP" client "$ADDR" explore synth:seed=5,cores=12 > "$DIR/synth.json"

# Byte-identity: the daemon's report equals the one-shot CLI's.
"$SUNMAP" explore dsp --capacity 1000 --json > "$DIR/oneshot.json"
cmp "$DIR/served.json" "$DIR/oneshot.json" \
    || fail "served report differs from one-shot report"
cmp "$DIR/served.json" "$DIR/served2.json" \
    || fail "warm report differs from cold report"
grep -q '"app":"synth:seed=5,cores=12"' "$DIR/synth.json" \
    || fail "synthetic report missing its app spec"

# The stats counters must prove the warm cache worked.
"$SUNMAP" client "$ADDR" stats > "$DIR/stats.json"
grep -q '"schema":"sunmap-serve-metrics/1"' "$DIR/stats.json" \
    || fail "stats frame carries no metrics snapshot"
grep -q '"explore":3' "$DIR/stats.json" \
    || fail "stats should count 3 explore requests"
grep -q '"hits":1,"misses":2' "$DIR/stats.json" \
    || fail "stats should record 1 cache hit and 2 misses"

# Graceful drain: the shutdown frame is acknowledged, the process
# exits 0 and dumps a final metrics snapshot.
"$SUNMAP" client "$ADDR" shutdown | grep -q '"draining":true' \
    || fail "shutdown frame not acknowledged"
wait "$SERVE_PID" || fail "daemon exited non-zero"
grep -q '"schema":"sunmap-serve-metrics/1"' "$STDOUT" \
    || fail "daemon did not dump metrics on shutdown"

# The request log replays byte-identically through the one-shot path.
"$SUNMAP" replay --log "$LOG" | grep -q 'replay ok: 3 request' \
    || { echo "serve-smoke: replay failed" >&2; exit 1; }

echo "serve-smoke: ok (3 requests, 1 warm hit, drained, log replayed)"
