#!/bin/sh
# Smoke-test the distributed batch pipeline end-to-end through the
# release binary: run the committed 20-job sample manifest once in a
# single process (the oracle), then again through a batch-coordinator
# with two batch-worker processes — one of which is kill -9'd mid-run.
# The coordinator must requeue the dead worker's leases onto the
# survivor and assemble byte-identical JSONL.
#
# Usage: scripts/shard_smoke.sh <path-to-sunmap-binary> <scratch-dir>
set -eu

SUNMAP=${1:?usage: shard_smoke.sh <sunmap-binary> <scratch-dir>}
DIR=${2:?usage: shard_smoke.sh <sunmap-binary> <scratch-dir>}
MANIFEST=examples/batch.manifest

rm -rf "$DIR"
mkdir -p "$DIR"
STDOUT="$DIR/coordinator.stdout"

fail() {
    echo "shard-smoke: $1" >&2
    kill "$COORD_PID" 2>/dev/null || true
    kill -9 "$W1_PID" "$W2_PID" 2>/dev/null || true
    exit 1
}

# The single-process oracle the distributed run must reproduce.
"$SUNMAP" batch --jobs "$MANIFEST" --out "$DIR/whole" --workers 2

"$SUNMAP" batch-coordinator --jobs "$MANIFEST" --out "$DIR/dist" \
    --listen 127.0.0.1:0 --grain 2 > "$STDOUT" &
COORD_PID=$!

# The coordinator prints a flushed "listening on <addr>" line before
# accepting its first worker; poll for it.
ADDR=
tries=0
while [ -z "$ADDR" ]; do
    tries=$((tries + 1))
    [ "$tries" -le 100 ] || fail "coordinator never announced its address"
    kill -0 "$COORD_PID" 2>/dev/null || fail "coordinator exited prematurely"
    ADDR=$(sed -n 's/^sunmap-coordinator listening on //p' "$STDOUT")
    [ -n "$ADDR" ] || sleep 0.1
done
echo "shard-smoke: coordinator is up on $ADDR"

"$SUNMAP" batch-worker "$ADDR" --jobs "$MANIFEST" --name doomed \
    > "$DIR/worker1.stdout" 2>&1 &
W1_PID=$!
"$SUNMAP" batch-worker "$ADDR" --jobs "$MANIFEST" --name survivor \
    > "$DIR/worker2.stdout" 2>&1 &
W2_PID=$!

# Give the doomed worker time to take a lease, then kill -9 it. The
# kill is tolerant: on a fast machine the run may already be over, in
# which case this exercises nothing extra but must not fail the smoke.
sleep 1
kill -9 "$W1_PID" 2>/dev/null || true
echo "shard-smoke: killed worker 1 mid-run"

wait "$COORD_PID" || fail "coordinator exited non-zero"
wait "$W2_PID" || fail "surviving worker exited non-zero"
wait "$W1_PID" 2>/dev/null || true

grep -q '"schema":"sunmap-shard-metrics/1"' "$STDOUT" \
    || fail "coordinator did not dump its shard counters"
cmp "$DIR/dist/batch.jsonl" "$DIR/whole/batch.jsonl" \
    || fail "distributed bytes differ from the single-process run"

echo "shard-smoke: ok (bytes identical across a worker kill)"
