#!/bin/sh
# Smoke-test the large-topology mapping path through the release
# binary and test suite (ISSUE 9):
#
#   1. byte-compare a full-library 64-core explore report across every
#      route-table preparation strategy (the report must be invariant
#      under the knob);
#   2. run the pinned 256/1024-core scale goldens and the 4096-core
#      mesh wall-clock smoke in release (SUNMAP_SCALE_SMOKE=1 opts the
#      4096 run in; it is skipped in the debug tier-1 suite).
#
# Usage: scripts/scale_smoke.sh <path-to-sunmap-binary> <scratch-dir>
set -eu

SUNMAP=${1:?usage: scale_smoke.sh <sunmap-binary> <scratch-dir>}
DIR=${2:?usage: scale_smoke.sh <sunmap-binary> <scratch-dir>}

rm -rf "$DIR"
mkdir -p "$DIR"

fail() {
    echo "scale-smoke: $1" >&2
    exit 1
}

# One 64-core synthetic workload through the whole library, once per
# preparation strategy. The report line embeds no preparation state,
# so all four must be byte-identical.
"$SUNMAP" explore synth:seed=7,cores=64 --json > "$DIR/auto.json"
for prep in eager lazy closed-form; do
    "$SUNMAP" explore synth:seed=7,cores=64 --json --table-prep "$prep" \
        > "$DIR/$prep.json"
    cmp "$DIR/auto.json" "$DIR/$prep.json" \
        || fail "--table-prep $prep report differs from auto"
done
echo "scale-smoke: 64-core reports byte-identical across auto/eager/lazy/closed-form"

# The pinned scale goldens (256- and 1024-core MinDelay maps) plus the
# 4096-core mesh smoke, in release where the wall-clock bound is
# meaningful.
SUNMAP_SCALE_SMOKE=1 cargo test --locked --release -q \
    --test golden_cost_fixtures -- --nocapture scale_tier mesh_4096 \
    || fail "release scale goldens failed"

echo "scale-smoke: ok (byte-identical preps, 1024-core goldens, 4096-core mesh)"
