//! MPEG4 design-space exploration (paper §6.1 Fig. 7 and §6.3 Fig. 9).
//!
//! Three studies on the MPEG4 decoder:
//!
//! 1. the per-topology table of Fig. 7(b) under split-traffic routing —
//!    the butterfly produces no feasible mapping, the mesh wins;
//! 2. the routing-function bandwidth staircase of Fig. 9(a): minimum
//!    required link bandwidth under DO / MP / SM / SA routing;
//! 3. the area-power Pareto points of Fig. 9(b) for mesh mappings.
//!
//! Run with: `cargo run --example mpeg4_design_space`

use sunmap::topology::builders;
use sunmap::traffic::benchmarks;
use sunmap::{pareto_exploration, routing_bandwidth_sweep, Objective, RoutingFunction, Sunmap};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mpeg4 = benchmarks::mpeg4();

    println!("=== Fig. 7(b): MPEG4 mappings (split-traffic routing) ===");
    let tool = Sunmap::builder(mpeg4.clone())
        .link_capacity(500.0)
        .routing(RoutingFunction::SplitAllPaths)
        .objective(Objective::MinDelay)
        .build();
    let ex = tool.explore()?;
    print!("{}", ex.table());
    if let Some(best) = ex.best_candidate() {
        println!("selected: {}", best.kind);
    }

    let mesh = builders::mesh(3, 4, 500.0)?;

    println!("\n=== Fig. 9(a): minimum link bandwidth per routing function (mesh) ===");
    for entry in routing_bandwidth_sweep(&mpeg4, &mesh) {
        println!(
            "  {:<3} {:>8.1} MB/s{}",
            entry.routing.abbrev(),
            entry.min_bandwidth,
            if entry.min_bandwidth <= 500.0 {
                "  (fits the 500 MB/s links)"
            } else {
                ""
            }
        );
    }

    println!("\n=== Fig. 9(b): area-power Pareto points (mesh mappings) ===");
    let (points, front) = pareto_exploration(&mpeg4, &mesh);
    println!(
        "  explored {} mappings, {} Pareto-optimal:",
        points.len(),
        front.len()
    );
    for p in &front {
        println!("  {:>8.2} mm2  {:>8.1} mW   [{}]", p.x, p.y, p.label);
    }
    Ok(())
}
