//! Quickstart: the complete SUNMAP flow on a small custom application.
//!
//! Builds a four-core producer/consumer pipeline, explores the standard
//! topology library, prints the phase-2 selection table and generates
//! the SystemC-style components of the winning NoC.
//!
//! Run with: `cargo run --example quickstart`

use sunmap::traffic::CoreGraph;
use sunmap::{Objective, RoutingFunction, Sunmap};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the application as a core graph (paper Definition 1):
    //    cores with areas (mm²) and directed bandwidth demands (MB/s).
    let mut app = CoreGraph::new();
    let sensor = app.add_core("sensor", 2.0);
    let dsp = app.add_core("dsp", 6.0);
    let cpu = app.add_core("cpu", 9.0);
    let dram = app.add_core("dram", 8.0);
    app.add_traffic(sensor, dsp, 120.0)?;
    app.add_traffic(dsp, cpu, 240.0)?;
    app.add_traffic(cpu, dram, 400.0)?;
    app.add_traffic(dram, cpu, 400.0)?;
    app.add_traffic(cpu, sensor, 20.0)?;

    // 2. Configure the tool: 500 MB/s links, minimum-path routing,
    //    minimise average communication delay.
    let tool = Sunmap::builder(app)
        .link_capacity(500.0)
        .routing(RoutingFunction::MinPath)
        .objective(Objective::MinDelay)
        .build();

    // 3. Phases 1+2: map onto every library topology, pick the best.
    let exploration = tool.explore()?;
    println!("=== Topology exploration (objective: min delay) ===");
    print!("{}", exploration.table());

    // 4. Phase 3: generate the network components of the winner.
    let best = exploration
        .best_candidate()
        .expect("this little app maps everywhere");
    let design = tool.generate(best, "quickstart");
    println!("\n=== Generated design ({}) ===", best.kind);
    println!(
        "{} switches, {} network interfaces, {} source files:",
        design.netlist.switch_count(),
        design.netlist.ni_count(),
        design.files.len()
    );
    for f in &design.files {
        println!("  {} ({} lines)", f.name, f.content.lines().count());
    }
    Ok(())
}
