//! Heterogeneous topology modelling (paper §7 future work).
//!
//! Builds a two-tier custom NoC — a fat 1 GB/s spine between two hub
//! switches, thin 500 MB/s spokes to two leaf switches — and lets it
//! compete against the standard library for the DSP filter application.
//! The heterogeneous design concentrates the heavy FFT chain on the
//! spine and wins on switch count.
//!
//! Run with: `cargo run --example custom_topology`

use sunmap::topology::{builders, CustomTopologyBuilder};
use sunmap::traffic::benchmarks;
use sunmap::{Objective, RoutingFunction, Sunmap};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = benchmarks::dsp_filter();

    // A hand-designed two-tier NoC for this traffic:
    //   leaf_a -- hub_a == hub_b -- leaf_b     (== is the 1 GB/s spine)
    // with two core ports on each hub and one on each leaf.
    let mut b = CustomTopologyBuilder::new("two-tier");
    let leaf_a = b.add_switch_at(0, 0);
    let hub_a = b.add_switch_at(0, 1);
    let hub_b = b.add_switch_at(0, 2);
    let leaf_b = b.add_switch_at(0, 3);
    b.add_link(hub_a, hub_b, 1000.0)?;
    b.add_link(leaf_a, hub_a, 500.0)?;
    b.add_link(hub_b, leaf_b, 500.0)?;
    for sw in [hub_a, hub_a, hub_b, hub_b, leaf_a, leaf_b] {
        b.add_port(sw)?;
    }
    let custom = b.build()?;

    // Enter it into the library alongside the standard five.
    let mut library = builders::standard_library(app.core_count(), 1000.0)?;
    library.push(custom);

    let tool = Sunmap::builder(app)
        .link_capacity(1000.0)
        .routing(RoutingFunction::MinPath)
        .objective(Objective::MinDelay)
        .build();
    let ex = tool.explore_library(library);

    println!("=== DSP filter on the extended library (custom two-tier added) ===");
    print!("{}", ex.table());
    let custom_row = ex
        .candidates
        .iter()
        .find(|c| c.kind.name() == "Custom")
        .expect("custom candidate present");
    match custom_row.report() {
        Some(r) => println!(
            "\ncustom design: {} switches, max link load {:.0} MB/s, {:.1} mW",
            r.switch_count, r.max_link_load, r.power_mw
        ),
        None => println!("\ncustom design infeasible under these constraints"),
    }

    if let Some(best) = ex.best_candidate() {
        let design = tool.generate(best, "custom_vs_library");
        println!(
            "winner: {} -> generated {} SystemC files",
            best.kind,
            design.files.len()
        );
    }
    Ok(())
}
