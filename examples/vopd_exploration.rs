//! VOPD case study (paper §6.1, Figs. 3 and 6).
//!
//! Maps the Video Object Plane Decoder onto all five standard
//! topologies, reproducing the paper's motivating mesh-vs-torus
//! comparison (Fig. 3d) and the full topology characteristics of
//! Fig. 6: average hop delay, switch/link resources, design area and
//! power. The butterfly should come out best on all three cost axes.
//!
//! Run with: `cargo run --example vopd_exploration`

use sunmap::traffic::benchmarks;
use sunmap::{Objective, RoutingFunction, Sunmap};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tool = Sunmap::builder(benchmarks::vopd())
        .link_capacity(500.0)
        .routing(RoutingFunction::MinPath)
        .objective(Objective::MinPower)
        .build();
    let ex = tool.explore()?;

    println!("=== Fig. 6: VOPD mapping characteristics ===");
    println!(
        "{:<10} {:>8} {:>9} {:>7} {:>11} {:>11} {:>12}",
        "Topo", "avg hops", "switches", "links", "area (mm2)", "power (mW)", "avg link(mm)"
    );
    for c in &ex.candidates {
        match c.report() {
            Some(r) => println!(
                "{:<10} {:>8.2} {:>9} {:>7} {:>11.2} {:>11.1} {:>12.2}",
                c.kind.name(),
                r.avg_hops,
                r.switch_count,
                r.link_count,
                r.design_area,
                r.power_mw,
                r.avg_link_length_mm
            ),
            None => println!("{:<10} infeasible", c.kind.name()),
        }
    }

    let mesh = ex.candidates[0].report().expect("mesh feasible");
    let torus = ex.candidates[1].report().expect("torus feasible");
    println!("\n=== Fig. 3(d): mesh vs torus design parameters ===");
    println!(
        "{:<14} {:>10} {:>10} {:>12}",
        "metric", "Mesh", "Torus", "torus/mesh"
    );
    println!(
        "{:<14} {:>10.2} {:>10.2} {:>12.2}",
        "avg hops",
        mesh.avg_hops,
        torus.avg_hops,
        torus.avg_hops / mesh.avg_hops
    );
    println!(
        "{:<14} {:>10.2} {:>10.2} {:>12.2}",
        "area (mm2)",
        mesh.design_area,
        torus.design_area,
        torus.design_area / mesh.design_area
    );
    println!(
        "{:<14} {:>10.1} {:>10.1} {:>12.2}",
        "power (mW)",
        mesh.power_mw,
        torus.power_mw,
        torus.power_mw / mesh.power_mw
    );

    let best = ex.best_candidate().expect("VOPD is feasible");
    println!(
        "\nSelected topology: {} (the paper's winner is the 4-ary 2-fly butterfly)",
        best.kind
    );
    Ok(())
}
