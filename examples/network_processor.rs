//! 16-node network processor case study (paper §6.2, Fig. 8).
//!
//! Maps the network-processor traffic onto all five topologies with
//! relaxed bandwidth constraints, then drives each generated network
//! with its adversarial traffic pattern at increasing injection rates —
//! the Clos, with its maximal path diversity, should hold the lowest
//! latency as load grows, at an area/power cost only slightly above the
//! butterfly.
//!
//! Run with: `cargo run --release --example network_processor`
//! (release strongly recommended: this simulates tens of thousands of
//! cycles per topology).

use sunmap::mapping::Constraints;
use sunmap::sim::{adversarial_pattern, latency_sweep, SimConfig};
use sunmap::topology::builders;
use sunmap::traffic::benchmarks;
use sunmap::{Objective, RoutingFunction, Sunmap};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = benchmarks::network_processor(100.0);

    println!("=== Fig. 8(c,d): design area and power per topology ===");
    let tool = Sunmap::builder(app)
        .link_capacity(500.0)
        .routing(RoutingFunction::SplitMinPaths)
        .objective(Objective::MinDelay)
        .constraints(Constraints::relaxed_bandwidth())
        .build();
    let ex = tool.explore()?;
    println!("{:<10} {:>11} {:>11}", "Topo", "area (mm2)", "power (mW)");
    for c in &ex.candidates {
        if let Some(r) = c.report() {
            println!(
                "{:<10} {:>11.2} {:>11.1}",
                c.kind.name(),
                r.design_area,
                r.power_mw
            );
        }
    }

    println!("\n=== Fig. 8(b): avg packet latency vs injection rate ===");
    let rates = [0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5];
    print!("{:<10}", "rate");
    for r in rates {
        print!("{r:>7.2}");
    }
    println!();
    for g in builders::standard_library(16, 500.0)? {
        let pattern = adversarial_pattern(g.kind());
        let curve = latency_sweep(&g, SimConfig::default(), &pattern, &rates);
        print!("{:<10}", g.kind().name());
        for (_, lat) in curve {
            print!("{lat:>7.1}");
        }
        println!("   ({} traffic)", pattern.name());
    }
    println!("\n(latencies in cycles; a saturated topology shows the hockey stick early)");
    Ok(())
}
