//! DSP filter end-to-end flow (paper §6.4, Fig. 10).
//!
//! Runs the complete SUNMAP flow on the six-core DSP filter: topology
//! exploration, cycle-level simulation of every candidate (the
//! SystemC-validation step of Fig. 10c — the butterfly should show the
//! lowest average packet latency), and generation of the winning
//! network's SystemC-style components, written to
//! `target/sunmap-dsp/`.
//!
//! Run with: `cargo run --release --example dsp_filter_flow`

use std::fs;
use std::path::Path;

use sunmap::sim::{SimConfig, SimSession};
use sunmap::traffic::benchmarks;
use sunmap::{Objective, RoutingFunction, Sunmap};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = benchmarks::dsp_filter();
    // The DSP chain carries 600 MB/s flows; give the NoC 1 GB/s links.
    let tool = Sunmap::builder(app.clone())
        .link_capacity(1000.0)
        .routing(RoutingFunction::MinPath)
        .objective(Objective::MinDelay)
        .build();

    let ex = tool.explore()?;
    println!("=== DSP filter exploration ===");
    print!("{}", ex.table());

    println!("\n=== Fig. 10(c): simulated avg packet latency per topology ===");
    for c in &ex.candidates {
        let Ok(mapping) = &c.outcome else {
            println!("{:<10} infeasible", c.kind.name());
            continue;
        };
        let mut sim = SimSession::builder(&c.graph)
            .config(SimConfig::default())
            .build();
        let stats = sim.run_trace(mapping.evaluation(), &app, 0.45);
        println!(
            "{:<10} {:>6.1} cycles  ({} packets, delivery {:.0}%)",
            c.kind.name(),
            stats.avg_latency,
            stats.packets_delivered,
            stats.delivery_ratio() * 100.0
        );
    }

    let best = ex.best_candidate().expect("DSP maps feasibly");
    let design = tool.generate(best, "dsp_filter");
    let out = Path::new("target/sunmap-dsp");
    fs::create_dir_all(out)?;
    for f in &design.files {
        fs::write(out.join(&f.name), &f.content)?;
    }
    fs::write(out.join("noc.dot"), &design.dot)?;
    println!(
        "\nGenerated {} SystemC files + noc.dot for the {} into {}",
        design.files.len(),
        best.kind,
        out.display()
    );
    Ok(())
}
