//! Workspace smoke test for the paper's headline result (§6.1): the
//! VOPD benchmark, explored over the full topology library under the
//! minimum-power objective, selects the butterfly.
//!
//! This is the core crate's doctest quickstart promoted to a real
//! integration test so the end-to-end claim is exercised by `cargo
//! test` even when doctests are skipped.

use sunmap::traffic::benchmarks;
use sunmap::{Objective, RoutingFunction, Sunmap};

#[test]
fn vopd_min_power_selects_butterfly() {
    let tool = Sunmap::builder(benchmarks::vopd())
        .link_capacity(500.0)
        .routing(RoutingFunction::MinPath)
        .objective(Objective::MinPower)
        .build();

    let exploration = tool
        .explore()
        .expect("the standard library builds for VOPD");
    let best = exploration
        .best_candidate()
        .expect("VOPD maps feasibly onto at least one topology");

    assert_eq!(
        best.kind.name(),
        "Butterfly",
        "§6.1: the butterfly must win for VOPD under MinPower"
    );

    // The winning candidate must carry a feasible, fully costed report.
    let report = best
        .outcome
        .as_ref()
        .expect("winning candidate has a mapping")
        .report();
    assert!(report.feasible(), "selected topology must meet constraints");
    assert!(report.power_mw > 0.0, "power estimate must be positive");
    assert!(report.design_area > 0.0, "area estimate must be positive");
}
