//! End-to-end tests of the extension topologies (octagon and star),
//! exercising the paper's §1 claim that "other topologies ... can be
//! easily added to the topology library".

use sunmap::sim::{SimConfig, SimSession};
use sunmap::topology::builders;
use sunmap::traffic::benchmarks;
use sunmap::{Mapper, MapperConfig, Objective, RoutingFunction, Sunmap};

/// The standard library plus octagon and star, sized for `cores`.
fn extended_library(cores: usize, cap: f64) -> Vec<sunmap::TopologyGraph> {
    let mut lib = builders::standard_library(cores, cap).unwrap();
    if cores <= 8 {
        lib.push(builders::octagon(cap).unwrap());
    }
    lib.push(builders::star(cores, cap).unwrap());
    lib
}

#[test]
fn dsp_filter_explores_extended_library() {
    let tool = Sunmap::builder(benchmarks::dsp_filter())
        .link_capacity(1000.0)
        .build();
    let ex = tool.explore_library(extended_library(6, 1000.0));
    assert_eq!(ex.candidates.len(), 7);
    let star = ex
        .candidates
        .iter()
        .find(|c| c.kind.name() == "Star")
        .unwrap();
    let report = star.report().expect("star feasible at 1 GB/s channels");
    // A star crosses exactly one switch.
    assert!((report.avg_hops - 1.0).abs() < 1e-9);
    let oct = ex
        .candidates
        .iter()
        .find(|c| c.kind.name() == "Octagon")
        .unwrap();
    let report = oct.report().expect("octagon feasible");
    // Octagon diameter 2 -> between 2 and 3 switch traversals.
    assert!(report.avg_hops >= 2.0 && report.avg_hops <= 3.0);
}

#[test]
fn star_feasibility_is_bounded_by_port_channels() {
    // The DSP memory core moves 5 x 200 MB/s through its single star
    // channel pair; at 500 MB/s channels that still fits per direction
    // (600 out, 400 in exceeds 500 -> infeasible out).
    let star = builders::star(6, 500.0).unwrap();
    let cfg = MapperConfig::new(RoutingFunction::MinPath, Objective::MinDelay);
    let result = Mapper::new(&star, &benchmarks::dsp_filter(), cfg).run();
    assert!(
        result.is_err(),
        "memory's 600 MB/s egress cannot fit a 500 MB/s star channel"
    );
    // With 1 GB/s channels the star becomes feasible.
    let star = builders::star(6, 1000.0).unwrap();
    let mapping = Mapper::new(&star, &benchmarks::dsp_filter(), cfg)
        .run()
        .expect("star feasible at 1 GB/s");
    assert!(mapping.report().max_link_load <= 1000.0);
}

#[test]
fn octagon_full_flow_generates_components() {
    let mut app = benchmarks::dsp_filter();
    // Two more cores to fill the octagon.
    let a = app.add_core("dma", 2.0);
    let b = app.add_core("uart", 1.0);
    app.add_traffic(a, b, 10.0).unwrap();
    let tool = Sunmap::builder(app).link_capacity(1000.0).build();
    let ex = tool.explore_library(vec![builders::octagon(1000.0).unwrap()]);
    let best = ex.best_candidate().expect("octagon hosts 8 cores");
    let design = tool.generate(best, "octagon_dsp");
    assert_eq!(design.netlist.switch_count(), 8);
    assert_eq!(design.netlist.ni_count(), 8);
    // Octagon switches: 3 network neighbours + local core = 4x4.
    assert_eq!(design.netlist.switch_configs(), vec![(4, 4)]);
}

#[test]
fn extension_topologies_simulate() {
    let oct = builders::octagon(500.0).unwrap();
    let mut sim = SimSession::builder(&oct).config(SimConfig::fast()).build();
    let stats = sim.run_synthetic(
        &sunmap::traffic::patterns::TrafficPattern::UniformRandom,
        0.1,
    );
    assert!(stats.packets_delivered > 0);
    assert!(stats.delivery_ratio() > 0.95);

    let star = builders::star(8, 500.0).unwrap();
    let mut sim = SimSession::builder(&star).config(SimConfig::fast()).build();
    let stats = sim.run_synthetic(
        &sunmap::traffic::patterns::TrafficPattern::UniformRandom,
        0.1,
    );
    assert!(stats.packets_delivered > 0, "{stats}");
    // Star zero-ish load latency: one switch, very low.
    assert!(stats.avg_latency < 20.0, "{stats}");
}

#[test]
fn star_beats_everything_on_delay_but_not_on_power_at_scale() {
    // For a 12-core app the star needs a 12x12 crossbar: best delay,
    // poor power-per-bit. This is the trade-off that keeps stars niche.
    let vopd = benchmarks::vopd();
    let cfg = MapperConfig::new(RoutingFunction::MinPath, Objective::MinDelay);
    let star = builders::star(12, 1000.0).unwrap();
    let mesh = builders::mesh(3, 4, 1000.0).unwrap();
    let star_map = Mapper::new(&star, &vopd, cfg).run().expect("star feasible");
    let mesh_map = Mapper::new(&mesh, &vopd, cfg).run().expect("mesh feasible");
    assert!(star_map.report().avg_hops < mesh_map.report().avg_hops);
    assert!(
        star_map.report().switch_power_mw > mesh_map.report().switch_power_mw,
        "the big central crossbar must cost more switch power: star {} vs mesh {}",
        star_map.report().switch_power_mw,
        mesh_map.report().switch_power_mw
    );
}

#[test]
fn custom_heterogeneous_topology_flows_end_to_end() {
    // The paper's §7 future work: heterogeneous topology modeling. A
    // two-tier design: a fat 1 GB/s spine between two hub switches,
    // thin 500 MB/s links to two leaf switches, cores spread across
    // all four.
    use sunmap::topology::CustomTopologyBuilder;

    let mut b = CustomTopologyBuilder::new("two-tier");
    let hub_a = b.add_switch_at(0, 1);
    let hub_b = b.add_switch_at(0, 2);
    let leaf_a = b.add_switch_at(0, 0);
    let leaf_b = b.add_switch_at(0, 3);
    b.add_link(hub_a, hub_b, 1000.0).unwrap();
    b.add_link(leaf_a, hub_a, 500.0).unwrap();
    b.add_link(hub_b, leaf_b, 500.0).unwrap();
    for sw in [hub_a, hub_a, hub_b, hub_b, leaf_a, leaf_b] {
        b.add_port(sw).unwrap();
    }
    let custom = b.build().unwrap();

    let app = benchmarks::dsp_filter();
    let tool = Sunmap::builder(app.clone()).link_capacity(1000.0).build();
    let ex = tool.explore_library(vec![custom]);
    let best = ex.best_candidate().expect("custom design hosts 6 cores");
    assert_eq!(best.kind.name(), "Custom");
    let report = best.report().unwrap();
    assert!(report.feasible());
    // The heavy fft->filter->ifft chain must exploit hub co-location.
    assert!(report.max_link_load <= 1000.0);

    // Phase 3 and simulation work unchanged.
    let design = tool.generate(best, "two_tier");
    assert_eq!(design.netlist.switch_count(), 4);
    assert_eq!(design.netlist.ni_count(), 6);
    let mapping = best.outcome.as_ref().unwrap();
    let mut sim = SimSession::builder(&best.graph)
        .config(SimConfig::fast())
        .build();
    let stats = sim.run_trace(mapping.evaluation(), &app, 0.3);
    assert!(stats.packets_delivered > 0);
    assert!(stats.delivery_ratio() > 0.9, "{stats}");
}
