//! Property-based tests (proptest) of the core invariants listed in
//! DESIGN.md §6, exercised across randomly generated applications and
//! topology shapes.

use proptest::prelude::*;

use sunmap::mapping::{evaluate, Constraints, Placement};
use sunmap::power::{AreaPowerLibrary, Technology};
use sunmap::topology::{builders, paths, quadrant, NodeKind, TopologyGraph};
use sunmap::traffic::CoreGraph;
use sunmap::{pareto_front, Mapper, MapperConfig, ParetoPoint, RoutingFunction};

/// A random small application: `n` cores, random edges with bandwidth
/// in [1, 400] MB/s.
fn arb_app(max_cores: usize) -> impl Strategy<Value = CoreGraph> {
    (2..=max_cores)
        .prop_flat_map(|n| {
            let edges = proptest::collection::vec((0..n, 0..n, 1.0f64..400.0), 1..(2 * n).min(12));
            (Just(n), edges)
        })
        .prop_map(|(n, edges)| {
            let mut g = CoreGraph::new();
            let ids: Vec<_> = (0..n)
                .map(|i| g.add_core(format!("c{i}"), 1.0 + (i % 5) as f64))
                .collect();
            for (a, b, bw) in edges {
                if a != b {
                    g.add_traffic(ids[a], ids[b], bw).expect("valid traffic");
                }
            }
            g
        })
}

/// A topology from the standard library, sized for `cores`.
fn arb_topology(cores: usize) -> impl Strategy<Value = TopologyGraph> {
    (0usize..5).prop_map(move |i| {
        builders::standard_library(cores, 500.0).expect("library builds")[i].clone()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Quadrant graphs preserve minimum paths on every topology and
    /// every mappable pair (the defining property of §4.3).
    #[test]
    fn quadrants_preserve_min_paths(cores in 2usize..14, pick in 0usize..5) {
        let lib = builders::standard_library(cores, 500.0).unwrap();
        let g = &lib[pick];
        let nodes = g.mappable_nodes();
        for &a in nodes.iter().take(6) {
            for &b in nodes.iter().rev().take(6) {
                if a == b { continue; }
                let q = quadrant::quadrant_set(g, a, b);
                let full = paths::shortest_path(g, a, b, None).expect("connected");
                let restricted = paths::shortest_path(g, a, b, Some(&q))
                    .expect("quadrant keeps endpoints connected");
                prop_assert_eq!(restricted.len(), full.len());
            }
        }
    }

    /// Routed mappings conserve flow: per-commodity fractions sum to 1,
    /// every path runs source to destination, and link loads equal the
    /// sum of path flows.
    #[test]
    fn evaluation_conserves_flow(
        app in arb_app(8),
        routing_idx in 0usize..4,
    ) {
        let g = builders::mesh(3, 3, 500.0).unwrap();
        prop_assume!(app.core_count() <= g.mappable_nodes().len());
        let placement = Placement::new(
            g.mappable_nodes()[..app.core_count()].to_vec(), &g).unwrap();
        let mut lib = AreaPowerLibrary::new(Technology::um_0_10());
        let routing = RoutingFunction::ALL[routing_idx];
        let eval = evaluate(&g, &app, placement, routing, &mut lib,
                            &Constraints::relaxed_bandwidth()).unwrap();
        let mut expected = vec![0.0f64; g.edge_count()];
        for r in &eval.routes {
            let total: f64 = r.paths.iter().map(|(_, f)| f).sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
            for (p, f) in &r.paths {
                prop_assert_eq!(p.first(), Some(&r.src_node));
                prop_assert_eq!(p.last(), Some(&r.dst_node));
                for w in p.windows(2) {
                    let e = g.find_edge(w[0], w[1]).expect("path uses real edges");
                    expected[e.index()] += r.commodity.bandwidth * f;
                }
            }
        }
        for (a, b) in eval.link_loads.iter().zip(&expected) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    /// The mapper's result is a valid injective placement and, when it
    /// succeeds, genuinely satisfies the constraints it claims.
    #[test]
    fn mapper_placements_are_injective_and_feasible(
        app in arb_app(10),
        topo in (2usize..14).prop_flat_map(arb_topology),
    ) {
        prop_assume!(app.core_count() <= topo.mappable_nodes().len());
        let config = MapperConfig {
            max_swap_passes: 1,
            ..MapperConfig::default()
        };
        match Mapper::new(&topo, &app, config).run() {
            Ok(mapping) => {
                let assignment = mapping.placement().assignment();
                let mut seen = std::collections::HashSet::new();
                for node in assignment {
                    prop_assert!(seen.insert(*node), "duplicate target {node}");
                    prop_assert!(topo.mappable_nodes().contains(node));
                }
                let r = mapping.report();
                prop_assert!(r.feasible());
                prop_assert!(r.max_link_load <= 500.0 * (1.0 + 1e-9));
                prop_assert!(r.avg_hops >= 0.0);
                prop_assert!(r.power_mw >= 0.0);
                prop_assert!(r.design_area > 0.0);
            }
            Err(_) => {
                // Infeasibility is a legitimate outcome for random
                // heavy traffic; nothing further to check.
            }
        }
    }

    /// Split routing is capacity-honouring: it never requires
    /// meaningfully more link bandwidth than single-path routing. Below
    /// capacity SA deliberately stays on the shortest paths (keeping
    /// hop counts near minimum-path), so the guarantee is
    /// `SA <= max(MP, capacity) + one chunk of the heaviest commodity`.
    #[test]
    fn split_routing_is_capacity_honouring(app in arb_app(9)) {
        let g = builders::mesh(3, 3, 500.0).unwrap();
        prop_assume!(app.core_count() <= 9);
        let placement = Placement::new(
            g.mappable_nodes()[..app.core_count()].to_vec(), &g).unwrap();
        let mut lib = AreaPowerLibrary::new(Technology::um_0_10());
        let mp = evaluate(&g, &app, placement.clone(), RoutingFunction::MinPath,
                          &mut lib, &Constraints::relaxed_bandwidth()).unwrap();
        let sa = evaluate(&g, &app, placement, RoutingFunction::SplitAllPaths,
                          &mut lib, &Constraints::relaxed_bandwidth()).unwrap();
        let chunk = app.commodities().first().map(|c| c.bandwidth).unwrap_or(0.0) / 16.0;
        let bound = mp.report.max_link_load.max(500.0) + chunk + 1e-6;
        prop_assert!(sa.report.max_link_load <= bound,
            "SA {} exceeds bound {} (MP {})",
            sa.report.max_link_load, bound, mp.report.max_link_load);
        // And when single-path routing is infeasible, splitting always
        // helps or matches.
        if mp.report.max_link_load > 500.0 {
            prop_assert!(sa.report.max_link_load <= mp.report.max_link_load + 1e-6);
        }
    }

    /// Floorplans never overlap blocks, preserve areas, and contain
    /// every block in the chip bounding box.
    #[test]
    fn floorplans_are_geometrically_sound(
        app in arb_app(12),
        pick in 0usize..5,
    ) {
        let lib = builders::standard_library(app.core_count(), 500.0).unwrap();
        let g = &lib[pick];
        prop_assume!(app.core_count() <= g.mappable_nodes().len());
        let placement = Placement::new(
            g.mappable_nodes()[..app.core_count()].to_vec(), g).unwrap();
        let mut pw = AreaPowerLibrary::new(Technology::um_0_10());
        let eval = evaluate(g, &app, placement, RoutingFunction::MinPath,
                            &mut pw, &Constraints::relaxed_bandwidth()).unwrap();
        let fp = &eval.floorplan;
        let blocks = fp.blocks();
        for (i, a) in blocks.iter().enumerate() {
            prop_assert!(a.x >= -1e-9 && a.y >= -1e-9);
            prop_assert!(a.x + a.width <= fp.chip_width() + 1e-9);
            prop_assert!(a.y + a.height <= fp.chip_height() + 1e-9);
            for b in &blocks[i + 1..] {
                prop_assert!(!a.overlaps(b), "{} overlaps {}", a.name, b.name);
            }
        }
        prop_assert!(fp.utilization() > 0.0 && fp.utilization() <= 1.0 + 1e-9);
    }

    /// Pareto fronts are internally non-dominated and cover every
    /// non-dominated input point.
    #[test]
    fn pareto_front_is_exact(
        raw in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..40)
    ) {
        let points: Vec<ParetoPoint> = raw.iter().enumerate()
            .map(|(i, (x, y))| ParetoPoint { label: format!("p{i}"), x: *x, y: *y })
            .collect();
        let front = pareto_front(&points);
        prop_assert!(!front.is_empty());
        for a in &front {
            for b in &front {
                prop_assert!(!a.dominates(b));
            }
        }
        for p in &points {
            let dominated = points.iter().any(|q| q.dominates(p));
            let in_front = front.iter().any(|f| f.x == p.x && f.y == p.y);
            prop_assert!(dominated || in_front,
                "{} is non-dominated but missing from the front", p.label);
        }
    }

    /// Hop counts honour the paper's floor: any remote communication
    /// traverses at least two switches; butterfly always exactly its
    /// stage count.
    #[test]
    fn hop_floors_hold(app in arb_app(10)) {
        prop_assume!(app.edge_count() > 0);
        let g = builders::butterfly(4, 2, 500.0).unwrap();
        prop_assume!(app.core_count() <= 16);
        let placement = Placement::new(
            g.mappable_nodes()[..app.core_count()].to_vec(), &g).unwrap();
        let mut lib = AreaPowerLibrary::new(Technology::um_0_10());
        let eval = evaluate(&g, &app, placement, RoutingFunction::MinPath,
                            &mut lib, &Constraints::relaxed_bandwidth()).unwrap();
        for r in &eval.routes {
            prop_assert!((r.hops - 2.0).abs() < 1e-9,
                "butterfly hop count must be the stage count");
        }
    }
}

/// Non-proptest structural check kept here because it spans crates:
/// the mappable vertices of every standard topology are exactly its
/// core-attachment points.
#[test]
fn standard_library_mappable_counts() {
    for cores in [2usize, 5, 9, 12, 16] {
        for g in builders::standard_library(cores, 500.0).unwrap() {
            assert!(g.mappable_nodes().len() >= cores, "{}", g.kind());
            for n in g.mappable_nodes() {
                let k = g.node_kind(*n);
                if g.kind().is_direct() {
                    assert_eq!(k, NodeKind::Switch);
                } else {
                    assert_eq!(k, NodeKind::CorePort);
                }
            }
        }
    }
}
