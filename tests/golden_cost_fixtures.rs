//! Golden regression fixtures for the analytical flow: the winning
//! topology and its `CostReport` (power, floorplan area) plus the
//! number of candidate mappings the search evaluated, pinned for every
//! seed benchmark under the MinPower and MinDelay objectives.
//!
//! The whole engine is deterministic (index-ordered arrays, positional
//! parallel reduction, no hash-map iteration), so these values must
//! reproduce **bit for bit** — in debug and release builds alike. A
//! mapper/floorplanner/power-model refactor that shifts any of them is
//! a behavioral change and must update this table *consciously*, with
//! the shift explained in the commit.
//!
//! Captured from the PR-4 tree; the per-app capacity/routing choices
//! are the feasible configurations the `mapping_speed` bench also uses
//! (MPEG4 needs split-traffic routing at 500 MB/s links, §6.1).

use sunmap::mapping::Constraints;
use sunmap::topology::builders;
use sunmap::traffic::benchmarks;
use sunmap::traffic::synthetic::SyntheticSpec;
use sunmap::{
    CoreGraph, Mapper, MapperConfig, Objective, RoutingFunction, Sunmap, TablePrep, TopologyGraph,
};

struct Fixture {
    app: &'static str,
    objective: Objective,
    winner: &'static str,
    power_mw: f64,
    floorplan_area: f64,
    evaluated_candidates: usize,
}

const fn fx(
    app: &'static str,
    objective: Objective,
    winner: &'static str,
    power_mw: f64,
    floorplan_area: f64,
    evaluated_candidates: usize,
) -> Fixture {
    Fixture {
        app,
        objective,
        winner,
        power_mw,
        floorplan_area,
        evaluated_candidates,
    }
}

/// The pinned table: `(app, objective) -> (winner, power, area, evals)`.
const FIXTURES: &[Fixture] = &[
    fx(
        "vopd",
        Objective::MinPower,
        "Butterfly",
        323.22820758493697,
        108.06924717925845,
        457,
    ),
    fx(
        "vopd",
        Objective::MinDelay,
        "Butterfly",
        331.0532711173108,
        108.06924717925845,
        343,
    ),
    fx(
        "mpeg4",
        Objective::MinPower,
        "Mesh",
        498.01477005170165,
        93.98015344210236,
        265,
    ),
    fx(
        "mpeg4",
        Objective::MinDelay,
        "Mesh",
        513.5475269329369,
        98.21885477809809,
        199,
    ),
    fx(
        "dsp",
        Objective::MinPower,
        "Butterfly",
        149.8352889503033,
        44.05147458360993,
        133,
    ),
    fx(
        "dsp",
        Objective::MinDelay,
        "Butterfly",
        161.19555402123052,
        61.91828364285431,
        34,
    ),
    fx(
        "netproc",
        Objective::MinPower,
        "Butterfly",
        442.748782863892,
        70.77312335632536,
        241,
    ),
    fx(
        "netproc",
        Objective::MinDelay,
        "Butterfly",
        450.121582863892,
        70.77312335632536,
        361,
    ),
];

/// The feasible exploration configuration of each seed benchmark.
fn app_config(name: &str) -> (CoreGraph, f64, RoutingFunction) {
    match name {
        "vopd" => (benchmarks::vopd(), 500.0, RoutingFunction::MinPath),
        "mpeg4" => (benchmarks::mpeg4(), 500.0, RoutingFunction::SplitAllPaths),
        "dsp" => (benchmarks::dsp_filter(), 1000.0, RoutingFunction::MinPath),
        "netproc" => (
            benchmarks::network_processor(100.0),
            500.0,
            RoutingFunction::SplitMinPaths,
        ),
        other => panic!("unknown fixture app {other}"),
    }
}

#[test]
fn seed_benchmark_explorations_match_the_pinned_goldens() {
    for f in FIXTURES {
        let (app, capacity, routing) = app_config(f.app);
        let tool = Sunmap::builder(app)
            .link_capacity(capacity)
            .routing(routing)
            .objective(f.objective)
            .build();
        let ex = tool.explore().expect("library builds for seed apps");
        let ctx = format!("{} / {:?}", f.app, f.objective);
        let best = ex
            .best_candidate()
            .unwrap_or_else(|| panic!("{ctx}: no feasible topology"));
        assert_eq!(best.kind.name(), f.winner, "{ctx}: winner drifted");
        let report = best.report().expect("winner is feasible");
        // Bit-exact: the flow is deterministic, so any difference at
        // all is a real behavioral change.
        assert_eq!(report.power_mw, f.power_mw, "{ctx}: power drifted");
        assert_eq!(
            report.floorplan_area, f.floorplan_area,
            "{ctx}: floorplan area drifted"
        );
        let mapping = best.outcome.as_ref().expect("winner is feasible");
        assert_eq!(
            mapping.evaluated_candidates(),
            f.evaluated_candidates,
            "{ctx}: candidate count drifted"
        );
    }
}

/// One pinned scale-tier mapping: `synth:seed=7,cores=<cores>` on one
/// library topology under MinDelay / dimension-ordered routing with
/// bandwidth relaxed (the large-mesh regime the lazy and closed-form
/// route preparations exist for; `TablePrep::Auto` resolves to
/// `ClosedForm` on every topology here).
struct ScaleFixture {
    cores: usize,
    /// Index into `builders::standard_library` (0 = mesh, 1 = torus,
    /// 2 = hypercube — the topologies whose delta search prunes at
    /// this scale; Clos/butterfly swaps all tie on hop count and
    /// defeat the bounds, see ROADMAP).
    topo: usize,
    kind: &'static str,
    power_mw: f64,
    floorplan_area: f64,
    evaluated_candidates: usize,
}

const fn sf(
    cores: usize,
    topo: usize,
    kind: &'static str,
    power_mw: f64,
    floorplan_area: f64,
    evaluated_candidates: usize,
) -> ScaleFixture {
    ScaleFixture {
        cores,
        topo,
        kind,
        power_mw,
        floorplan_area,
        evaluated_candidates,
    }
}

/// Captured from this tree, release build; the test also runs in the
/// debug tier-1 suite, so any debug/release divergence fails CI.
const SCALE_FIXTURES: &[ScaleFixture] = &[
    sf(256, 0, "Mesh", 38839.725349380074, 2654.8536160428516, 5),
    sf(256, 1, "Torus", 35218.79866803465, 2671.615158907521, 11),
    sf(
        256,
        2,
        "Hypercube",
        51488.06574020362,
        2857.5138937453785,
        5,
    ),
    sf(1024, 0, "Mesh", 267317.39912071684, 10944.405188740433, 34),
    sf(1024, 1, "Torus", 236281.63233211683, 10958.536845579782, 15),
    sf(
        1024,
        2,
        "Hypercube",
        318834.4472975451,
        12193.98233065516,
        4,
    ),
];

fn scale_config(prep: TablePrep) -> MapperConfig {
    MapperConfig {
        routing: RoutingFunction::DimensionOrdered,
        objective: Objective::MinDelay,
        constraints: Constraints::relaxed_bandwidth(),
        max_swap_passes: 1,
        table_prep: prep,
        ..MapperConfig::default()
    }
}

fn scale_topology(cores: usize, idx: usize) -> TopologyGraph {
    builders::standard_library(cores, 500.0)
        .expect("library builds")
        .swap_remove(idx)
}

fn scale_app(cores: usize) -> CoreGraph {
    let spec: SyntheticSpec = format!("synth:seed=7,cores={cores}")
        .parse()
        .expect("valid spec");
    spec.generate()
}

#[test]
fn scale_tier_mappings_match_the_pinned_goldens() {
    for tier in [256usize, 1024] {
        let app = scale_app(tier);
        let mut reports = Vec::new();
        for f in SCALE_FIXTURES.iter().filter(|f| f.cores == tier) {
            let g = scale_topology(tier, f.topo);
            assert_eq!(g.kind().name(), f.kind, "library order drifted");
            let mapping = Mapper::new(&g, &app, scale_config(TablePrep::Auto))
                .run()
                .expect("scale workload maps under relaxed bandwidth");
            let ctx = format!("{} / {}c", f.kind, f.cores);
            let report = mapping.report();
            assert_eq!(report.power_mw, f.power_mw, "{ctx}: power drifted");
            assert_eq!(
                report.floorplan_area, f.floorplan_area,
                "{ctx}: floorplan area drifted"
            );
            assert_eq!(
                mapping.evaluated_candidates(),
                f.evaluated_candidates,
                "{ctx}: candidate count drifted"
            );
            reports.push((f.kind, report.clone()));
        }
        // The tier's MinDelay winner is pinned too: the hypercube's
        // log-diameter beats the grids on average hops at every tier.
        let mut winner = 0;
        for i in 1..reports.len() {
            if reports[i]
                .1
                .better_than(&reports[winner].1, Objective::MinDelay)
            {
                winner = i;
            }
        }
        assert_eq!(reports[winner].0, "Hypercube", "{tier}c: winner drifted");
    }
}

/// The 4096-core acceptance smoke: a 64×64 mesh maps end to end under
/// a generous wall-clock bound (measured ~11 s cold in release on the
/// CI container), bit-identical to the pinned report. The run costs
/// minutes in a debug build, so `make scale-smoke` opts in through
/// `SUNMAP_SCALE_SMOKE=1` against the release binary.
#[test]
fn mesh_4096_smoke_maps_within_the_wall_clock_bound() {
    if std::env::var_os("SUNMAP_SCALE_SMOKE").is_none() {
        eprintln!("skipping 4096-core smoke (set SUNMAP_SCALE_SMOKE=1 to run)");
        return;
    }
    let app = scale_app(4096);
    let g = builders::mesh(64, 64, 500.0).expect("mesh builds");
    let start = std::time::Instant::now();
    let mapping = Mapper::new(&g, &app, scale_config(TablePrep::Auto))
        .run()
        .expect("4096-core mesh maps under relaxed bandwidth");
    let elapsed = start.elapsed();
    assert!(
        elapsed.as_secs() < 240,
        "4096-core mesh took {elapsed:.1?} (bound: 240 s)"
    );
    assert_eq!(mapping.report().power_mw, 2039084.202496331);
    assert_eq!(mapping.report().floorplan_area, 45464.20695604746);
    assert_eq!(mapping.evaluated_candidates(), 16);
    println!("4096-core mesh mapped in {elapsed:.1?}");
}

#[test]
fn goldens_are_reproducible_within_one_process() {
    // Double-checks the determinism assumption the table relies on:
    // two explorations in the same process agree bit for bit.
    let (app, capacity, routing) = app_config("vopd");
    let tool = Sunmap::builder(app)
        .link_capacity(capacity)
        .routing(routing)
        .objective(Objective::MinPower)
        .build();
    let a = tool.explore().unwrap();
    let b = tool.explore().unwrap();
    let ra = a.best_candidate().unwrap().report().unwrap();
    let rb = b.best_candidate().unwrap().report().unwrap();
    assert_eq!(ra, rb);
}
