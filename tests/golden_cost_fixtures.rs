//! Golden regression fixtures for the analytical flow: the winning
//! topology and its `CostReport` (power, floorplan area) plus the
//! number of candidate mappings the search evaluated, pinned for every
//! seed benchmark under the MinPower and MinDelay objectives.
//!
//! The whole engine is deterministic (index-ordered arrays, positional
//! parallel reduction, no hash-map iteration), so these values must
//! reproduce **bit for bit** — in debug and release builds alike. A
//! mapper/floorplanner/power-model refactor that shifts any of them is
//! a behavioral change and must update this table *consciously*, with
//! the shift explained in the commit.
//!
//! Captured from the PR-4 tree; the per-app capacity/routing choices
//! are the feasible configurations the `mapping_speed` bench also uses
//! (MPEG4 needs split-traffic routing at 500 MB/s links, §6.1).

use sunmap::traffic::benchmarks;
use sunmap::{CoreGraph, Objective, RoutingFunction, Sunmap};

struct Fixture {
    app: &'static str,
    objective: Objective,
    winner: &'static str,
    power_mw: f64,
    floorplan_area: f64,
    evaluated_candidates: usize,
}

const fn fx(
    app: &'static str,
    objective: Objective,
    winner: &'static str,
    power_mw: f64,
    floorplan_area: f64,
    evaluated_candidates: usize,
) -> Fixture {
    Fixture {
        app,
        objective,
        winner,
        power_mw,
        floorplan_area,
        evaluated_candidates,
    }
}

/// The pinned table: `(app, objective) -> (winner, power, area, evals)`.
const FIXTURES: &[Fixture] = &[
    fx(
        "vopd",
        Objective::MinPower,
        "Butterfly",
        323.22820758493697,
        108.06924717925845,
        457,
    ),
    fx(
        "vopd",
        Objective::MinDelay,
        "Butterfly",
        331.0532711173108,
        108.06924717925845,
        343,
    ),
    fx(
        "mpeg4",
        Objective::MinPower,
        "Mesh",
        498.01477005170165,
        93.98015344210236,
        265,
    ),
    fx(
        "mpeg4",
        Objective::MinDelay,
        "Mesh",
        513.5475269329369,
        98.21885477809809,
        199,
    ),
    fx(
        "dsp",
        Objective::MinPower,
        "Butterfly",
        149.8352889503033,
        44.05147458360993,
        133,
    ),
    fx(
        "dsp",
        Objective::MinDelay,
        "Butterfly",
        161.19555402123052,
        61.91828364285431,
        34,
    ),
    fx(
        "netproc",
        Objective::MinPower,
        "Butterfly",
        442.748782863892,
        70.77312335632536,
        241,
    ),
    fx(
        "netproc",
        Objective::MinDelay,
        "Butterfly",
        450.121582863892,
        70.77312335632536,
        361,
    ),
];

/// The feasible exploration configuration of each seed benchmark.
fn app_config(name: &str) -> (CoreGraph, f64, RoutingFunction) {
    match name {
        "vopd" => (benchmarks::vopd(), 500.0, RoutingFunction::MinPath),
        "mpeg4" => (benchmarks::mpeg4(), 500.0, RoutingFunction::SplitAllPaths),
        "dsp" => (benchmarks::dsp_filter(), 1000.0, RoutingFunction::MinPath),
        "netproc" => (
            benchmarks::network_processor(100.0),
            500.0,
            RoutingFunction::SplitMinPaths,
        ),
        other => panic!("unknown fixture app {other}"),
    }
}

#[test]
fn seed_benchmark_explorations_match_the_pinned_goldens() {
    for f in FIXTURES {
        let (app, capacity, routing) = app_config(f.app);
        let tool = Sunmap::builder(app)
            .link_capacity(capacity)
            .routing(routing)
            .objective(f.objective)
            .build();
        let ex = tool.explore().expect("library builds for seed apps");
        let ctx = format!("{} / {:?}", f.app, f.objective);
        let best = ex
            .best_candidate()
            .unwrap_or_else(|| panic!("{ctx}: no feasible topology"));
        assert_eq!(best.kind.name(), f.winner, "{ctx}: winner drifted");
        let report = best.report().expect("winner is feasible");
        // Bit-exact: the flow is deterministic, so any difference at
        // all is a real behavioral change.
        assert_eq!(report.power_mw, f.power_mw, "{ctx}: power drifted");
        assert_eq!(
            report.floorplan_area, f.floorplan_area,
            "{ctx}: floorplan area drifted"
        );
        let mapping = best.outcome.as_ref().expect("winner is feasible");
        assert_eq!(
            mapping.evaluated_candidates(),
            f.evaluated_candidates,
            "{ctx}: candidate count drifted"
        );
    }
}

#[test]
fn goldens_are_reproducible_within_one_process() {
    // Double-checks the determinism assumption the table relies on:
    // two explorations in the same process agree bit for bit.
    let (app, capacity, routing) = app_config("vopd");
    let tool = Sunmap::builder(app)
        .link_capacity(capacity)
        .routing(routing)
        .objective(Objective::MinPower)
        .build();
    let a = tool.explore().unwrap();
    let b = tool.explore().unwrap();
    let ra = a.best_candidate().unwrap().report().unwrap();
    let rb = b.best_candidate().unwrap().report().unwrap();
    assert_eq!(ra, rb);
}
