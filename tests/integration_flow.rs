//! Cross-crate integration tests of the full SUNMAP flow: traffic
//! models -> topology library -> mapping -> floorplan/power ->
//! selection -> generation -> simulation.

use sunmap::gen::LinkKind;
use sunmap::sim::{SimConfig, SimSession};
use sunmap::traffic::{benchmarks, CoreGraph};
use sunmap::{Constraints, Objective, RoutingFunction, Sunmap, SunmapError};

#[test]
fn end_to_end_vopd_flow() {
    let tool = Sunmap::builder(benchmarks::vopd())
        .link_capacity(500.0)
        .routing(RoutingFunction::MinPath)
        .objective(Objective::MinPower)
        .build();
    let (exploration, design) = tool.run("vopd").expect("VOPD flows end to end");

    // Phase 2: butterfly wins for VOPD (paper §6.1).
    let best = exploration.best_candidate().unwrap();
    assert_eq!(best.kind.name(), "Butterfly");

    // Phase 3: generated components match the chosen topology.
    assert_eq!(design.netlist.switch_count(), best.graph.switch_count());
    assert_eq!(design.netlist.ni_count(), 12);
    assert!(design.files.iter().any(|f| f.name.starts_with("top_")));
    assert!(design.dot.contains("digraph"));

    // The generated network simulates and delivers traffic.
    let mapping = best.outcome.as_ref().unwrap();
    let mut sim = SimSession::builder(&best.graph)
        .config(SimConfig::fast())
        .build();
    let stats = sim.run_trace(mapping.evaluation(), tool.application(), 0.2);
    assert!(stats.packets_delivered > 0);
    assert!(stats.avg_latency > 0.0);
}

#[test]
fn end_to_end_netlist_connectivity_is_closed() {
    let tool = Sunmap::builder(benchmarks::dsp_filter())
        .link_capacity(1000.0)
        .build();
    let (_, design) = tool.run("dsp").expect("DSP flows end to end");
    // Every connection endpoint indexes a real component.
    for conn in &design.netlist.connections {
        assert!(conn.from < design.netlist.components.len());
        assert!(conn.to < design.netlist.components.len());
    }
    // Every NI has exactly one attach link in each direction.
    let attach = design.netlist.connection_count(LinkKind::Attach);
    assert_eq!(attach, 2 * design.netlist.ni_count());
}

#[test]
fn objective_changes_selected_topology_cost() {
    let base = Sunmap::builder(benchmarks::mpeg4()).routing(RoutingFunction::SplitAllPaths);
    let delay_ex = base
        .clone()
        .objective(Objective::MinDelay)
        .build()
        .explore()
        .unwrap();
    let power_ex = base
        .clone()
        .objective(Objective::MinPower)
        .build()
        .explore()
        .unwrap();
    let delay_best = delay_ex.best_candidate().unwrap().report().unwrap();
    let power_best = power_ex.best_candidate().unwrap().report().unwrap();
    assert!(delay_best.avg_hops <= power_best.avg_hops + 1e-9);
    assert!(power_best.power_mw <= delay_best.power_mw + 1e-9);
}

#[test]
fn relaxed_bandwidth_constraints_admit_overloaded_mappings() {
    // With enforcement on, a 50 MB/s NoC cannot carry VOPD anywhere.
    let strict = Sunmap::builder(benchmarks::vopd())
        .link_capacity(50.0)
        .build();
    assert!(matches!(
        strict.run("x"),
        Err(SunmapError::NoFeasibleTopology(_))
    ));
    // With relaxation (the paper's §6.2 methodology), mappings exist
    // but honestly report their overload.
    let relaxed = Sunmap::builder(benchmarks::vopd())
        .link_capacity(50.0)
        .constraints(Constraints::relaxed_bandwidth())
        .build();
    let ex = relaxed.explore().unwrap();
    let best = ex.best_candidate().expect("relaxed mapping exists");
    let report = best.report().unwrap();
    assert!(!report.bandwidth_ok);
    assert!(report.max_link_load > 50.0);
}

#[test]
fn single_core_application_maps_trivially() {
    let mut app = CoreGraph::new();
    app.add_core("solo", 4.0);
    let tool = Sunmap::builder(app).build();
    let ex = tool.explore().unwrap();
    let best = ex.best_candidate().expect("a lone core maps anywhere");
    let r = best.report().unwrap();
    assert_eq!(r.avg_hops, 0.0);
    assert_eq!(r.max_link_load, 0.0);
}

#[test]
fn technology_scaling_propagates_to_reports() {
    let fine = Sunmap::builder(benchmarks::vopd())
        .build()
        .explore()
        .unwrap();
    let coarse = Sunmap::builder(benchmarks::vopd())
        .technology(sunmap::power::Technology::um_0_18())
        .build()
        .explore()
        .unwrap();
    let f = fine.candidates[0].report().unwrap();
    let c = coarse.candidates[0].report().unwrap();
    assert!(c.switch_area > 2.0 * f.switch_area, "area must scale up");
    assert!(c.power_mw > f.power_mw, "power must scale up");
}
