//! Regression tests pinning the *shape* of every paper experiment: who
//! wins, by roughly what factor, and where the qualitative crossovers
//! fall. These are the claims EXPERIMENTS.md records; if one of these
//! fails, a model change broke the reproduction.

use sunmap::sim::{adversarial_pattern, SimConfig, SimSession};
use sunmap::topology::builders;
use sunmap::traffic::benchmarks;
use sunmap::{routing_bandwidth_sweep, Constraints, Objective, RoutingFunction, Sunmap};

fn vopd_exploration() -> sunmap::Exploration {
    Sunmap::builder(benchmarks::vopd())
        .link_capacity(500.0)
        .routing(RoutingFunction::MinPath)
        .objective(Objective::MinPower)
        .build()
        .explore()
        .unwrap()
}

#[test]
fn fig3d_torus_trades_hops_for_area_and_power() {
    let ex = vopd_exploration();
    let mesh = ex.candidates[0].report().expect("mesh feasible");
    let torus = ex.candidates[1].report().expect("torus feasible");
    // Paper ratios: hops 0.90, area 1.06, power 1.22.
    assert!(torus.avg_hops < mesh.avg_hops, "torus should win on hops");
    assert!(
        torus.avg_hops / mesh.avg_hops > 0.80,
        "hop advantage should be modest (paper: 10%)"
    );
    assert!(torus.design_area > mesh.design_area, "mesh wins area");
    assert!(
        torus.power_mw > 1.1 * mesh.power_mw,
        "mesh wins power by >10%"
    );
    assert!(torus.power_mw < 1.6 * mesh.power_mw, "but not absurdly");
}

#[test]
fn fig6_butterfly_wins_vopd_on_all_axes() {
    let ex = vopd_exploration();
    let reports: Vec<_> = ex
        .candidates
        .iter()
        .map(|c| (c.kind.name(), c.report().expect("all feasible for VOPD")))
        .collect();
    let bfly = reports.iter().find(|(n, _)| *n == "Butterfly").unwrap().1;
    for (name, r) in &reports {
        if *name == "Butterfly" {
            continue;
        }
        assert!(bfly.avg_hops <= r.avg_hops + 1e-9, "hops vs {name}");
        assert!(bfly.design_area <= r.design_area + 1e-9, "area vs {name}");
        assert!(bfly.power_mw <= r.power_mw + 1e-9, "power vs {name}");
    }
    // Fig. 6(a): butterfly = exactly 2 stages of switches.
    assert!((bfly.avg_hops - 2.0).abs() < 1e-9);
    // Fig. 6(b): fewest switches, more links than the mesh.
    let mesh = reports.iter().find(|(n, _)| *n == "Mesh").unwrap().1;
    assert!(bfly.switch_count < mesh.switch_count);
    assert!(bfly.link_count > mesh.link_count);
    // Clos has 3 stages -> 3 hops (Fig. 6a).
    let clos = reports.iter().find(|(n, _)| *n == "Clos").unwrap().1;
    assert!((clos.avg_hops - 3.0).abs() < 1e-9);
}

#[test]
fn fig7b_mpeg4_needs_split_routing_and_excludes_butterfly() {
    // Min-path: no topology is feasible (910 MB/s flow vs 500 MB/s links).
    let mp = Sunmap::builder(benchmarks::mpeg4())
        .routing(RoutingFunction::MinPath)
        .build()
        .explore()
        .unwrap();
    assert!(mp.best.is_none(), "min-path must fail everywhere");

    // Split-traffic: everything but the butterfly becomes feasible.
    let sa = Sunmap::builder(benchmarks::mpeg4())
        .routing(RoutingFunction::SplitAllPaths)
        .objective(Objective::MinPower)
        .build()
        .explore()
        .unwrap();
    for c in &sa.candidates {
        if c.kind.name() == "Butterfly" {
            assert!(c.outcome.is_err(), "butterfly has no path diversity");
        } else {
            assert!(c.outcome.is_ok(), "{} should be feasible", c.kind);
        }
    }
    // The mesh's area/power advantage overrides the torus's small hop
    // advantage: mesh is selected (paper: "a mesh topology is more
    // suitable for the MPEG4").
    assert_eq!(sa.best_candidate().unwrap().kind.name(), "Mesh");
}

#[test]
fn fig8b_clos_outlasts_other_topologies_under_adversarial_load() {
    // At a moderate-high injection rate, the Clos must still deliver
    // packets where weaker topologies saturate (shorter windows keep
    // the test fast; the bench sweeps the full curve).
    let cfg = SimConfig {
        warmup_cycles: 300,
        measure_cycles: 2_000,
        drain_cycles: 2_000,
        ..SimConfig::default()
    };
    let rate = 0.40;
    let mut ratios = Vec::new();
    for g in builders::standard_library(16, 500.0).unwrap() {
        let mut sim = SimSession::builder(&g).config(cfg).build();
        let stats = sim.run_synthetic(&adversarial_pattern(g.kind()), rate);
        ratios.push((g.kind().name(), stats.delivery_ratio(), stats.avg_latency));
    }
    let clos = ratios.iter().find(|(n, _, _)| *n == "Clos").unwrap();
    assert!(
        clos.1 > 0.95,
        "clos must not saturate at rate {rate}: {ratios:?}"
    );
    // At least two other topologies are already saturated or much
    // slower than the Clos there.
    let worse = ratios
        .iter()
        .filter(|(n, dr, lat)| *n != "Clos" && (*dr < 0.9 || *lat > 2.0 * clos.2))
        .count();
    assert!(worse >= 2, "clos should clearly outperform: {ratios:?}");
}

#[test]
fn fig8cd_clos_close_to_butterfly_on_area_and_power() {
    let ex = Sunmap::builder(benchmarks::network_processor(100.0))
        .routing(RoutingFunction::SplitMinPaths)
        .constraints(Constraints::relaxed_bandwidth())
        .build()
        .explore()
        .unwrap();
    let get = |name: &str| {
        ex.candidates
            .iter()
            .find(|c| c.kind.name() == name)
            .and_then(|c| c.report())
            .unwrap_or_else(|| panic!("{name} feasible"))
    };
    let clos = get("Clos");
    let bfly = get("Butterfly");
    let torus = get("Torus");
    // "only slightly higher than the butterfly topology".
    assert!(clos.design_area >= bfly.design_area - 1e-9);
    assert!(clos.design_area < 1.15 * bfly.design_area);
    assert!(clos.power_mw < 2.0 * bfly.power_mw);
    // Direct topologies cost more than the indirect pair here.
    assert!(torus.power_mw > clos.power_mw);
}

#[test]
fn fig9a_routing_staircase_and_500mbs_cutoff() {
    let mesh = builders::mesh(3, 4, 500.0).unwrap();
    let sweep = routing_bandwidth_sweep(&benchmarks::mpeg4(), &mesh);
    let bw: Vec<f64> = sweep.iter().map(|e| e.min_bandwidth).collect();
    assert!(bw[0] >= bw[1] - 1e-6 && bw[1] >= bw[2] - 1e-6 && bw[2] >= bw[3] - 1e-6);
    // "only split-traffic routing can be used for mapping MPEG4" at
    // 500 MB/s: single-path functions need more, SA fits.
    assert!(bw[0] > 500.0 && bw[1] > 500.0);
    assert!(bw[3] <= 500.0);
    // Single-path minimum is pinned by the 910 MB/s SDRAM flow.
    assert!(bw[1] >= 910.0 - 1e-6);
}

#[test]
fn fig10c_butterfly_has_minimum_simulated_latency_for_dsp() {
    let app = benchmarks::dsp_filter();
    let ex = Sunmap::builder(app.clone())
        .link_capacity(1000.0)
        .routing(RoutingFunction::MinPath)
        .build()
        .explore()
        .unwrap();
    let cfg = SimConfig {
        warmup_cycles: 300,
        measure_cycles: 2_000,
        drain_cycles: 2_000,
        ..SimConfig::default()
    };
    let mut latencies = Vec::new();
    for c in &ex.candidates {
        let mapping = c
            .outcome
            .as_ref()
            .unwrap_or_else(|e| panic!("{} should be feasible at 1 GB/s links: {e}", c.kind));
        let mut sim = SimSession::builder(&c.graph).config(cfg).build();
        let stats = sim.run_trace(mapping.evaluation(), &app, 0.45);
        latencies.push((c.kind.name(), stats.avg_latency));
    }
    let bfly = latencies.iter().find(|(n, _)| *n == "Butterfly").unwrap().1;
    for (name, lat) in &latencies {
        if *name != "Butterfly" {
            assert!(
                bfly <= lat + 1.0,
                "butterfly ({bfly:.1}) should be fastest, {name} got {lat:.1}: {latencies:?}"
            );
        }
    }
}
